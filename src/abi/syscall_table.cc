#include "src/abi/syscall_table.h"

#include <algorithm>
#include <map>

namespace wabi {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kX8664: return "x86_64";
    case Isa::kAarch64: return "aarch64";
    case Isa::kRiscv64: return "rv64";
  }
  return "<bad>";
}

namespace {

// S3: present on all three ISAs (x86_64 number, asm-generic number used by
//     both aarch64 and riscv64).
// SXA: present on x86_64 + aarch64 only (e.g. renameat, memfd_secret).
// SX: legacy x86_64-only.
// SR: riscv64-only.
#define S3(name, x, g) {#name, {x, g, g}},
#define SXA(name, x, g) {#name, {x, g, -1}},
#define SX(name, x) {#name, {x, -1, -1}},
#define SR(name, g) {#name, {-1, -1, g}},

const std::vector<SyscallEntry>* BuildTable() {
  auto* table = new std::vector<SyscallEntry>({
      // --- common core (asm-generic order) ---
      S3(io_setup, 206, 0) S3(io_destroy, 207, 1) S3(io_submit, 209, 2)
      S3(io_cancel, 210, 3) S3(io_getevents, 208, 4)
      S3(setxattr, 188, 5) S3(lsetxattr, 189, 6) S3(fsetxattr, 190, 7)
      S3(getxattr, 191, 8) S3(lgetxattr, 192, 9) S3(fgetxattr, 193, 10)
      S3(listxattr, 194, 11) S3(llistxattr, 195, 12) S3(flistxattr, 196, 13)
      S3(removexattr, 197, 14) S3(lremovexattr, 198, 15) S3(fremovexattr, 199, 16)
      S3(getcwd, 79, 17) S3(eventfd2, 290, 19)
      S3(epoll_create1, 291, 20) S3(epoll_ctl, 233, 21) S3(epoll_pwait, 281, 22)
      S3(dup, 32, 23) S3(dup3, 292, 24) S3(fcntl, 72, 25)
      S3(inotify_init1, 294, 26) S3(inotify_add_watch, 254, 27)
      S3(inotify_rm_watch, 255, 28) S3(ioctl, 16, 29)
      S3(ioprio_set, 251, 30) S3(ioprio_get, 252, 31) S3(flock, 73, 32)
      S3(mknodat, 259, 33) S3(mkdirat, 258, 34) S3(unlinkat, 263, 35)
      S3(symlinkat, 266, 36) S3(linkat, 265, 37)
      SXA(renameat, 264, 38)
      S3(umount2, 166, 39) S3(mount, 165, 40) S3(pivot_root, 155, 41)
      S3(statfs, 137, 43) S3(fstatfs, 138, 44) S3(truncate, 76, 45)
      S3(ftruncate, 77, 46) S3(fallocate, 285, 47) S3(faccessat, 269, 48)
      S3(chdir, 80, 49) S3(fchdir, 81, 50) S3(chroot, 161, 51)
      S3(fchmod, 91, 52) S3(fchmodat, 268, 53) S3(fchownat, 260, 54)
      S3(fchown, 93, 55) S3(openat, 257, 56) S3(close, 3, 57)
      S3(vhangup, 153, 58) S3(pipe2, 293, 59) S3(quotactl, 179, 60)
      S3(getdents64, 217, 61) S3(lseek, 8, 62) S3(read, 0, 63)
      S3(write, 1, 64) S3(readv, 19, 65) S3(writev, 20, 66)
      S3(pread64, 17, 67) S3(pwrite64, 18, 68) S3(preadv, 295, 69)
      S3(pwritev, 296, 70) S3(sendfile, 40, 71) S3(pselect6, 270, 72)
      S3(ppoll, 271, 73) S3(signalfd4, 289, 74) S3(vmsplice, 278, 75)
      S3(splice, 275, 76) S3(tee, 276, 77) S3(readlinkat, 267, 78)
      S3(newfstatat, 262, 79) S3(fstat, 5, 80) S3(sync, 162, 81)
      S3(fsync, 74, 82) S3(fdatasync, 75, 83) S3(sync_file_range, 277, 84)
      S3(timerfd_create, 283, 85) S3(timerfd_settime, 286, 86)
      S3(timerfd_gettime, 287, 87) S3(utimensat, 280, 88) S3(acct, 163, 89)
      S3(capget, 125, 90) S3(capset, 126, 91) S3(personality, 135, 92)
      S3(exit, 60, 93) S3(exit_group, 231, 94) S3(waitid, 247, 95)
      S3(set_tid_address, 218, 96) S3(unshare, 272, 97) S3(futex, 202, 98)
      S3(set_robust_list, 273, 99) S3(get_robust_list, 274, 100)
      S3(nanosleep, 35, 101) S3(getitimer, 36, 102) S3(setitimer, 38, 103)
      S3(kexec_load, 246, 104) S3(init_module, 175, 105)
      S3(delete_module, 176, 106)
      S3(timer_create, 222, 107) S3(timer_gettime, 224, 108)
      S3(timer_getoverrun, 225, 109) S3(timer_settime, 223, 110)
      S3(timer_delete, 226, 111) S3(clock_settime, 227, 112)
      S3(clock_gettime, 228, 113) S3(clock_getres, 229, 114)
      S3(clock_nanosleep, 230, 115) S3(syslog, 103, 116) S3(ptrace, 101, 117)
      S3(sched_setparam, 142, 118) S3(sched_setscheduler, 144, 119)
      S3(sched_getscheduler, 145, 120) S3(sched_getparam, 143, 121)
      S3(sched_setaffinity, 203, 122) S3(sched_getaffinity, 204, 123)
      S3(sched_yield, 24, 124) S3(sched_get_priority_max, 146, 125)
      S3(sched_get_priority_min, 147, 126) S3(sched_rr_get_interval, 148, 127)
      S3(restart_syscall, 219, 128) S3(kill, 62, 129) S3(tkill, 200, 130)
      S3(tgkill, 234, 131) S3(sigaltstack, 131, 132)
      S3(rt_sigsuspend, 130, 133) S3(rt_sigaction, 13, 134)
      S3(rt_sigprocmask, 14, 135) S3(rt_sigpending, 127, 136)
      S3(rt_sigtimedwait, 128, 137) S3(rt_sigqueueinfo, 129, 138)
      S3(rt_sigreturn, 15, 139) S3(setpriority, 141, 140)
      S3(getpriority, 140, 141) S3(reboot, 169, 142) S3(setregid, 114, 143)
      S3(setgid, 106, 144) S3(setreuid, 113, 145) S3(setuid, 105, 146)
      S3(setresuid, 117, 147) S3(getresuid, 118, 148) S3(setresgid, 119, 149)
      S3(getresgid, 120, 150) S3(setfsuid, 122, 151) S3(setfsgid, 123, 152)
      S3(times, 100, 153) S3(setpgid, 109, 154) S3(getpgid, 121, 155)
      S3(getsid, 124, 156) S3(setsid, 112, 157) S3(getgroups, 115, 158)
      S3(setgroups, 116, 159) S3(uname, 63, 160) S3(sethostname, 170, 161)
      S3(setdomainname, 171, 162) S3(getrlimit, 97, 163) S3(setrlimit, 160, 164)
      S3(getrusage, 98, 165) S3(umask, 95, 166) S3(prctl, 157, 167)
      S3(getcpu, 309, 168) S3(gettimeofday, 96, 169) S3(settimeofday, 164, 170)
      S3(adjtimex, 159, 171) S3(getpid, 39, 172) S3(getppid, 110, 173)
      S3(getuid, 102, 174) S3(geteuid, 107, 175) S3(getgid, 104, 176)
      S3(getegid, 108, 177) S3(gettid, 186, 178) S3(sysinfo, 99, 179)
      S3(mq_open, 240, 180) S3(mq_unlink, 241, 181) S3(mq_timedsend, 242, 182)
      S3(mq_timedreceive, 243, 183) S3(mq_notify, 244, 184)
      S3(mq_getsetattr, 245, 185)
      S3(msgget, 68, 186) S3(msgctl, 71, 187) S3(msgrcv, 70, 188)
      S3(msgsnd, 69, 189) S3(semget, 64, 190) S3(semctl, 66, 191)
      S3(semtimedop, 220, 192) S3(semop, 65, 193) S3(shmget, 29, 194)
      S3(shmctl, 31, 195) S3(shmat, 30, 196) S3(shmdt, 67, 197)
      S3(socket, 41, 198) S3(socketpair, 53, 199) S3(bind, 49, 200)
      S3(listen, 50, 201) S3(accept, 43, 202) S3(connect, 42, 203)
      S3(getsockname, 51, 204) S3(getpeername, 52, 205) S3(sendto, 44, 206)
      S3(recvfrom, 45, 207) S3(setsockopt, 54, 208) S3(getsockopt, 55, 209)
      S3(shutdown, 48, 210) S3(sendmsg, 46, 211) S3(recvmsg, 47, 212)
      S3(readahead, 187, 213) S3(brk, 12, 214) S3(munmap, 11, 215)
      S3(mremap, 25, 216) S3(add_key, 248, 217) S3(request_key, 249, 218)
      S3(keyctl, 250, 219) S3(clone, 56, 220) S3(execve, 59, 221)
      S3(mmap, 9, 222) S3(fadvise64, 221, 223) S3(swapon, 167, 224)
      S3(swapoff, 168, 225) S3(mprotect, 10, 226) S3(msync, 26, 227)
      S3(mlock, 149, 228) S3(munlock, 150, 229) S3(mlockall, 151, 230)
      S3(munlockall, 152, 231) S3(mincore, 27, 232) S3(madvise, 28, 233)
      S3(remap_file_pages, 216, 234) S3(mbind, 237, 235)
      S3(get_mempolicy, 239, 236) S3(set_mempolicy, 238, 237)
      S3(migrate_pages, 256, 238) S3(move_pages, 279, 239)
      S3(rt_tgsigqueueinfo, 297, 240) S3(perf_event_open, 298, 241)
      S3(accept4, 288, 242) S3(recvmmsg, 299, 243)
      S3(wait4, 61, 260) S3(prlimit64, 302, 261)
      S3(fanotify_init, 300, 262) S3(fanotify_mark, 301, 263)
      S3(name_to_handle_at, 303, 264) S3(open_by_handle_at, 304, 265)
      S3(clock_adjtime, 305, 266) S3(syncfs, 306, 267) S3(setns, 308, 268)
      S3(sendmmsg, 307, 269) S3(process_vm_readv, 310, 270)
      S3(process_vm_writev, 311, 271) S3(kcmp, 312, 272)
      S3(finit_module, 313, 273) S3(sched_setattr, 314, 274)
      S3(sched_getattr, 315, 275) S3(renameat2, 316, 276) S3(seccomp, 317, 277)
      S3(getrandom, 318, 278) S3(memfd_create, 319, 279) S3(bpf, 321, 280)
      S3(execveat, 322, 281) S3(userfaultfd, 323, 282) S3(membarrier, 324, 283)
      S3(mlock2, 325, 284) S3(copy_file_range, 326, 285) S3(preadv2, 327, 286)
      S3(pwritev2, 328, 287) S3(pkey_mprotect, 329, 288) S3(pkey_alloc, 330, 289)
      S3(pkey_free, 331, 290) S3(statx, 332, 291) S3(io_pgetevents, 333, 292)
      S3(rseq, 334, 293) S3(kexec_file_load, 320, 294)
      S3(pidfd_send_signal, 424, 424) S3(io_uring_setup, 425, 425)
      S3(io_uring_enter, 426, 426) S3(io_uring_register, 427, 427)
      S3(open_tree, 428, 428) S3(move_mount, 429, 429) S3(fsopen, 430, 430)
      S3(fsconfig, 431, 431) S3(fsmount, 432, 432) S3(fspick, 433, 433)
      S3(pidfd_open, 434, 434) S3(clone3, 435, 435) S3(close_range, 436, 436)
      S3(openat2, 437, 437) S3(pidfd_getfd, 438, 438) S3(faccessat2, 439, 439)
      S3(process_madvise, 440, 440) S3(epoll_pwait2, 441, 441)
      S3(mount_setattr, 442, 442)
      S3(landlock_create_ruleset, 444, 444) S3(landlock_add_rule, 445, 445)
      S3(landlock_restrict_self, 446, 446)
      SXA(memfd_secret, 447, 447)
      S3(process_mrelease, 448, 448) S3(futex_waitv, 449, 449)
      // --- legacy x86_64-only ---
      SX(open, 2) SX(stat, 4) SX(lstat, 6) SX(poll, 7) SX(access, 21)
      SX(pipe, 22) SX(select, 23) SX(dup2, 33) SX(pause, 34) SX(alarm, 37)
      SX(fork, 57) SX(vfork, 58) SX(getdents, 78) SX(rename, 82) SX(mkdir, 83)
      SX(rmdir, 84) SX(creat, 85) SX(link, 86) SX(unlink, 87) SX(symlink, 88)
      SX(readlink, 89) SX(chmod, 90) SX(chown, 92) SX(lchown, 94)
      SX(getpgrp, 111) SX(utime, 132) SX(mknod, 133) SX(uselib, 134)
      SX(ustat, 136) SX(sysfs, 139) SX(modify_ldt, 154) SX(_sysctl, 156)
      SX(arch_prctl, 158) SX(iopl, 172) SX(ioperm, 173) SX(time, 201)
      SX(epoll_create, 213) SX(epoll_wait, 232) SX(utimes, 235)
      SX(inotify_init, 253) SX(futimesat, 261) SX(signalfd, 282)
      SX(eventfd, 284)
      // --- riscv64-only ---
      SR(riscv_flush_icache, 259)
  });
#undef S3
#undef SXA
#undef SX
#undef SR
  std::sort(table->begin(), table->end(),
            [](const SyscallEntry& a, const SyscallEntry& b) {
              return std::string_view(a.name) < std::string_view(b.name);
            });
  return table;
}

}  // namespace

const std::vector<SyscallEntry>& SyscallTable() {
  static const std::vector<SyscallEntry>* kTable = BuildTable();
  return *kTable;
}

const SyscallEntry* FindSyscall(std::string_view name) {
  const auto& table = SyscallTable();
  auto it = std::lower_bound(table.begin(), table.end(), name,
                             [](const SyscallEntry& e, std::string_view n) {
                               return std::string_view(e.name) < n;
                             });
  if (it != table.end() && std::string_view(it->name) == name) {
    return &*it;
  }
  return nullptr;
}

std::vector<std::string> SyscallNames(Isa isa) {
  std::vector<std::string> names;
  for (const SyscallEntry& e : SyscallTable()) {
    if (e.PresentOn(isa)) {
      names.push_back(e.name);
    }
  }
  return names;
}

IsaSimilarity ComputeIsaSimilarity() {
  IsaSimilarity out = {};
  for (const SyscallEntry& e : SyscallTable()) {
    int present = 0;
    for (int i = 0; i < kNumIsas; ++i) {
      if (e.number[i] >= 0) {
        ++out.total[i];
        ++present;
      }
    }
    if (present == kNumIsas) {
      ++out.common_all;
    } else if (present == 1) {
      for (int i = 0; i < kNumIsas; ++i) {
        if (e.number[i] >= 0) ++out.arch_specific[i];
      }
    }
  }
  return out;
}

}  // namespace wabi
