// Zephyr-class RTOS simulator (S5 in DESIGN.md).
//
// The paper's WAZI (§5.1) targets Zephyr, whose syscall interface is already
// ISA-portable and whose build emits a compile-time encoding of every
// syscall that the paper uses to auto-generate the WAMR bindings. We have no
// Zephyr hardware here, so this module provides the same *shape*: a small
// kernel with k_-style services (threads, semaphores, mutexes, message
// queues, timers, uptime/sleep), a device table (UART / GPIO / sensor), and
// — crucially — a self-describing syscall encoding table (SyscallEncoding())
// from which WAZI auto-generates its host bindings, mirroring the recipe.
#ifndef SRC_RTOS_KERNEL_H_
#define SRC_RTOS_KERNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rtos {

// Zephyr-style return codes.
inline constexpr int64_t kOk = 0;
inline constexpr int64_t kEagain = -11;
inline constexpr int64_t kEinval = -22;
inline constexpr int64_t kEnomem = -12;
inline constexpr int64_t kEnodev = -19;
inline constexpr int64_t kEbusy = -16;

// K_FOREVER / K_NO_WAIT timeout sentinels (milliseconds otherwise).
inline constexpr int64_t kForever = -1;
inline constexpr int64_t kNoWait = 0;

class Kernel;

// ---- kernel objects (opaque handles across the WAZI boundary) ----

class Semaphore {
 public:
  Semaphore(uint32_t initial, uint32_t limit) : count_(initial), limit_(limit) {}
  int64_t Take(int64_t timeout_ms);
  void Give();
  uint32_t Count();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint32_t count_;
  uint32_t limit_;
};

class Mutex {
 public:
  int64_t Lock(int64_t timeout_ms);
  int64_t Unlock();

 private:
  std::timed_mutex mu_;
  std::atomic<std::thread::id> owner_{};
};

class MsgQueue {
 public:
  MsgQueue(uint32_t msg_size, uint32_t max_msgs)
      : msg_size_(msg_size), max_msgs_(max_msgs) {}
  int64_t Put(const void* msg, int64_t timeout_ms);
  int64_t Get(void* msg, int64_t timeout_ms);
  uint32_t NumUsed();
  uint32_t msg_size() const { return msg_size_; }

 private:
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  uint32_t msg_size_;
  uint32_t max_msgs_;
  std::deque<std::vector<uint8_t>> queue_;
};

// ---- devices ----

enum class DeviceKind : uint8_t { kUart = 0, kGpio = 1, kSensor = 2 };

class Device {
 public:
  Device(std::string name, DeviceKind kind) : name_(std::move(name)), kind_(kind) {}
  virtual ~Device() = default;
  const std::string& name() const { return name_; }
  DeviceKind kind() const { return kind_; }

 private:
  std::string name_;
  DeviceKind kind_;
};

// Console UART: bytes written become the kernel's console transcript;
// a test-fed input queue backs uart_poll_in.
class UartDevice : public Device {
 public:
  explicit UartDevice(std::string name) : Device(std::move(name), DeviceKind::kUart) {}
  void PollOut(uint8_t byte);
  int64_t PollIn(uint8_t* byte);  // kOk or kEagain (empty)
  std::string TakeOutput();
  void FeedInput(const std::string& bytes);

 private:
  std::mutex mu_;
  std::string output_;
  std::deque<uint8_t> input_;
};

class GpioDevice : public Device {
 public:
  explicit GpioDevice(std::string name, int num_pins = 32)
      : Device(std::move(name), DeviceKind::kGpio), pins_(num_pins, 0),
        configured_(num_pins, 0) {}
  int64_t Configure(uint32_t pin, uint32_t flags);
  int64_t Set(uint32_t pin, uint32_t value);
  int64_t Get(uint32_t pin);
  uint64_t toggle_count(uint32_t pin);

 private:
  std::mutex mu_;
  std::vector<uint8_t> pins_;
  std::vector<uint32_t> configured_;
  std::map<uint32_t, uint64_t> toggles_;
};

// Synthetic sensor: deterministic sawtooth per channel (a temperature-style
// trace), standing in for the paper's physical sensor boards.
class SensorDevice : public Device {
 public:
  explicit SensorDevice(std::string name)
      : Device(std::move(name), DeviceKind::kSensor) {}
  int64_t SampleFetch();
  // Returns a fixed-point milli-unit reading for `channel`.
  int64_t ChannelGet(uint32_t channel);

 private:
  std::mutex mu_;
  uint64_t sample_seq_ = 0;
  std::map<uint32_t, int64_t> latest_;
};

// ---- the kernel ----

class Kernel {
 public:
  Kernel();
  ~Kernel();

  // Time. Virtual uptime advances in real time but is offset-based so tests
  // stay deterministic enough.
  int64_t UptimeMs();
  void SleepMs(int64_t ms);
  void Yield();

  // Object creation returns small handles (Zephyr passes object pointers;
  // handles keep the WAZI boundary ISA-portable and validated).
  int64_t SemCreate(uint32_t initial, uint32_t limit);
  Semaphore* Sem(int64_t handle);
  int64_t MutexCreate();
  Mutex* Mut(int64_t handle);
  int64_t MsgqCreate(uint32_t msg_size, uint32_t max_msgs);
  MsgQueue* Msgq(int64_t handle);

  // Threads: entry runs on a native thread (the simulator's "scheduler" is
  // the host's, with priorities recorded but advisory).
  int64_t ThreadCreate(std::function<void()> entry, int priority,
                       const std::string& name);
  int64_t ThreadJoin(int64_t handle, int64_t timeout_ms);
  int thread_count();

  // Devices.
  void RegisterDevice(std::shared_ptr<Device> device);
  int64_t DeviceGetBinding(const std::string& name);  // handle or kEnodev
  Device* DeviceByHandle(int64_t handle);
  UartDevice* Console();  // the default "uart0"

  // Fault counter (WAZI traps feed this; Zephyr would k_oops).
  void RecordFault() { faults_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  int64_t boot_ns_;
  int64_t next_handle_ = 1;
  std::map<int64_t, std::unique_ptr<Semaphore>> sems_;
  std::map<int64_t, std::unique_ptr<Mutex>> mutexes_;
  std::map<int64_t, std::unique_ptr<MsgQueue>> msgqs_;
  struct ThreadSlot {
    std::thread native;
    int priority;
    std::string name;
  };
  std::map<int64_t, std::unique_ptr<ThreadSlot>> threads_;
  std::vector<std::shared_ptr<Device>> devices_;
  std::atomic<uint64_t> faults_{0};
};

// ---- compile-time syscall encoding (the auto-generation source) ----

struct KSyscallDesc {
  const char* name;   // e.g. "k_sem_take"
  int nargs;
  const char* group;  // "time", "sync", "thread", "device", ...
};

// The full encoded syscall surface of this kernel, analogous to Zephyr's
// generated syscall list; WAZI auto-generates its bindings from this table
// (paper §5: ">85% of the implementation auto-generated").
const std::vector<KSyscallDesc>& SyscallEncoding();

}  // namespace rtos

#endif  // SRC_RTOS_KERNEL_H_
