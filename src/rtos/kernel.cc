#include "src/rtos/kernel.h"

#include <chrono>

#include "src/common/time_util.h"

namespace rtos {

namespace {

std::cv_status WaitOn(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                      int64_t timeout_ms) {
  if (timeout_ms < 0) {
    cv.wait(lock);
    return std::cv_status::no_timeout;
  }
  return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms));
}

}  // namespace

// ---- Semaphore ----

int64_t Semaphore::Take(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (count_ > 0) {
    --count_;
    return kOk;
  }
  if (timeout_ms == kNoWait) {
    return kEbusy;
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  while (count_ == 0) {
    if (timeout_ms < 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
               count_ == 0) {
      return kEagain;
    }
  }
  --count_;
  return kOk;
}

void Semaphore::Give() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ < limit_) {
      ++count_;
    }
  }
  cv_.notify_one();
}

uint32_t Semaphore::Count() {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

// ---- Mutex ----

int64_t Mutex::Lock(int64_t timeout_ms) {
  if (timeout_ms < 0) {
    mu_.lock();
  } else if (timeout_ms == 0) {
    if (!mu_.try_lock()) {
      return kEbusy;
    }
  } else if (!mu_.try_lock_for(std::chrono::milliseconds(timeout_ms))) {
    return kEagain;
  }
  owner_.store(std::this_thread::get_id(), std::memory_order_release);
  return kOk;
}

int64_t Mutex::Unlock() {
  if (owner_.load(std::memory_order_acquire) != std::this_thread::get_id()) {
    return kEinval;  // Zephyr: only the owner may unlock
  }
  owner_.store(std::thread::id(), std::memory_order_release);
  mu_.unlock();
  return kOk;
}

// ---- MsgQueue ----

int64_t MsgQueue::Put(const void* msg, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  while (queue_.size() >= max_msgs_) {
    if (timeout_ms == kNoWait) {
      return kEagain;
    }
    if (WaitOn(not_full_, lock, timeout_ms) == std::cv_status::timeout &&
        queue_.size() >= max_msgs_) {
      return kEagain;
    }
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(msg);
  queue_.emplace_back(bytes, bytes + msg_size_);
  not_empty_.notify_one();
  return kOk;
}

int64_t MsgQueue::Get(void* msg, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  while (queue_.empty()) {
    if (timeout_ms == kNoWait) {
      return kEagain;
    }
    if (WaitOn(not_empty_, lock, timeout_ms) == std::cv_status::timeout &&
        queue_.empty()) {
      return kEagain;
    }
  }
  std::vector<uint8_t> front = std::move(queue_.front());
  queue_.pop_front();
  std::copy(front.begin(), front.end(), static_cast<uint8_t*>(msg));
  not_full_.notify_one();
  return kOk;
}

uint32_t MsgQueue::NumUsed() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(queue_.size());
}

// ---- devices ----

void UartDevice::PollOut(uint8_t byte) {
  std::lock_guard<std::mutex> lock(mu_);
  output_.push_back(static_cast<char>(byte));
}

int64_t UartDevice::PollIn(uint8_t* byte) {
  std::lock_guard<std::mutex> lock(mu_);
  if (input_.empty()) {
    return kEagain;
  }
  *byte = input_.front();
  input_.pop_front();
  return kOk;
}

std::string UartDevice::TakeOutput() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = std::move(output_);
  output_.clear();
  return out;
}

void UartDevice::FeedInput(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  input_.insert(input_.end(), bytes.begin(), bytes.end());
}

int64_t GpioDevice::Configure(uint32_t pin, uint32_t flags) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pin >= pins_.size()) {
    return kEinval;
  }
  configured_[pin] = flags;
  return kOk;
}

int64_t GpioDevice::Set(uint32_t pin, uint32_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pin >= pins_.size()) {
    return kEinval;
  }
  uint8_t v = value != 0 ? 1 : 0;
  if (pins_[pin] != v) {
    ++toggles_[pin];
  }
  pins_[pin] = v;
  return kOk;
}

int64_t GpioDevice::Get(uint32_t pin) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pin >= pins_.size()) {
    return kEinval;
  }
  return pins_[pin];
}

uint64_t GpioDevice::toggle_count(uint32_t pin) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = toggles_.find(pin);
  return it == toggles_.end() ? 0 : it->second;
}

int64_t SensorDevice::SampleFetch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++sample_seq_;
  // Channel 0: sawtooth 20000..29999 milli-degrees; channel 1: ramp.
  latest_[0] = 20000 + static_cast<int64_t>((sample_seq_ * 137) % 10000);
  latest_[1] = static_cast<int64_t>(sample_seq_ * 10);
  return kOk;
}

int64_t SensorDevice::ChannelGet(uint32_t channel) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(channel);
  return it == latest_.end() ? kEinval : it->second;
}

// ---- Kernel ----

Kernel::Kernel() : boot_ns_(common::MonotonicNanos()) {
  RegisterDevice(std::make_shared<UartDevice>("uart0"));
  RegisterDevice(std::make_shared<GpioDevice>("gpio0"));
  RegisterDevice(std::make_shared<SensorDevice>("temp0"));
}

Kernel::~Kernel() {
  std::map<int64_t, std::unique_ptr<ThreadSlot>> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (auto& [handle, slot] : threads) {
    if (slot->native.joinable()) {
      slot->native.join();
    }
  }
}

int64_t Kernel::UptimeMs() {
  return (common::MonotonicNanos() - boot_ns_) / 1000000;
}

void Kernel::SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void Kernel::Yield() { std::this_thread::yield(); }

int64_t Kernel::SemCreate(uint32_t initial, uint32_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t h = next_handle_++;
  sems_[h] = std::make_unique<Semaphore>(initial, limit);
  return h;
}

Semaphore* Kernel::Sem(int64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sems_.find(handle);
  return it == sems_.end() ? nullptr : it->second.get();
}

int64_t Kernel::MutexCreate() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t h = next_handle_++;
  mutexes_[h] = std::make_unique<Mutex>();
  return h;
}

Mutex* Kernel::Mut(int64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mutexes_.find(handle);
  return it == mutexes_.end() ? nullptr : it->second.get();
}

int64_t Kernel::MsgqCreate(uint32_t msg_size, uint32_t max_msgs) {
  if (msg_size == 0 || msg_size > 4096 || max_msgs == 0) {
    return kEinval;
  }
  std::lock_guard<std::mutex> lock(mu_);
  int64_t h = next_handle_++;
  msgqs_[h] = std::make_unique<MsgQueue>(msg_size, max_msgs);
  return h;
}

MsgQueue* Kernel::Msgq(int64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = msgqs_.find(handle);
  return it == msgqs_.end() ? nullptr : it->second.get();
}

int64_t Kernel::ThreadCreate(std::function<void()> entry, int priority,
                             const std::string& name) {
  auto slot = std::make_unique<ThreadSlot>();
  slot->priority = priority;
  slot->name = name;
  slot->native = std::thread(std::move(entry));
  std::lock_guard<std::mutex> lock(mu_);
  int64_t h = next_handle_++;
  threads_[h] = std::move(slot);
  return h;
}

int64_t Kernel::ThreadJoin(int64_t handle, int64_t timeout_ms) {
  std::unique_ptr<ThreadSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = threads_.find(handle);
    if (it == threads_.end()) {
      return kEinval;
    }
    slot = std::move(it->second);
    threads_.erase(it);
  }
  if (slot->native.joinable()) {
    slot->native.join();  // timeout advisory: host join is uninterruptible
  }
  return kOk;
}

int Kernel::thread_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void Kernel::RegisterDevice(std::shared_ptr<Device> device) {
  std::lock_guard<std::mutex> lock(mu_);
  devices_.push_back(std::move(device));
}

int64_t Kernel::DeviceGetBinding(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->name() == name) {
      return static_cast<int64_t>(i) + 1;  // 0 reserved
    }
  }
  return kEnodev;
}

Device* Kernel::DeviceByHandle(int64_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 1 || static_cast<size_t>(handle) > devices_.size()) {
    return nullptr;
  }
  return devices_[static_cast<size_t>(handle) - 1].get();
}

UartDevice* Kernel::Console() {
  return static_cast<UartDevice*>(DeviceByHandle(DeviceGetBinding("uart0")));
}

const std::vector<KSyscallDesc>& SyscallEncoding() {
  static const std::vector<KSyscallDesc>* kTable = new std::vector<KSyscallDesc>({
      {"k_uptime_get", 0, "time"},
      {"k_sleep", 1, "time"},
      {"k_usleep", 1, "time"},
      {"k_yield", 0, "time"},
      {"k_sem_create", 2, "sync"},
      {"k_sem_take", 2, "sync"},
      {"k_sem_give", 1, "sync"},
      {"k_sem_count_get", 1, "sync"},
      {"k_mutex_create", 0, "sync"},
      {"k_mutex_lock", 2, "sync"},
      {"k_mutex_unlock", 1, "sync"},
      {"k_msgq_create", 2, "ipc"},
      {"k_msgq_put", 3, "ipc"},
      {"k_msgq_get", 3, "ipc"},
      {"k_msgq_num_used_get", 1, "ipc"},
      {"k_thread_create", 3, "thread"},
      {"k_thread_join", 2, "thread"},
      {"device_get_binding", 1, "device"},
      {"uart_poll_out", 2, "device"},
      {"uart_poll_in", 2, "device"},
      {"gpio_pin_configure", 3, "device"},
      {"gpio_pin_set", 3, "device"},
      {"gpio_pin_get", 2, "device"},
      {"sensor_sample_fetch", 1, "device"},
      {"sensor_channel_get", 2, "device"},
      {"k_oops", 0, "fault"},
  });
  return *kTable;
}

}  // namespace rtos
