// Container runtime simulator: the "Docker" comparator of Fig. 8 (§4.3).
//
// Docker's startup cost is dominated by assembling the container's view of
// the world: pulling layer metadata, materializing the merged rootfs,
// creating namespaces/cgroups, and starting the init process. This simulator
// performs the same *kind* of work for real — it stages N image layers of
// real files on disk, assembles a merged rootfs (link-or-copy, like an
// overlay snapshot), and writes namespace/cgroup bookkeeping records — then
// runs the workload natively (containers execute directly on the CPU).
// Result: the characteristic large startup intercept with a near-native
// execution slope. Base memory models the daemon-side layer cache the paper
// measures (~30 MB): allocated and touched for real.
#ifndef SRC_VIRT_CONTAINER_H_
#define SRC_VIRT_CONTAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace virt {

struct ImageSpec {
  std::string name = "app";
  int num_layers = 6;          // typical small image
  int files_per_layer = 40;
  int bytes_per_file = 4096;
  uint64_t daemon_cache_bytes = 30ull << 20;  // paper: ~30 MB base overhead
};

class ContainerRuntime {
 public:
  explicit ContainerRuntime(std::string state_dir);
  ~ContainerRuntime();

  // Builds (once) the layer store for `image` — this models `docker pull`
  // and is excluded from startup measurements, like the paper's.
  common::Status PrepareImage(const ImageSpec& image);

  struct Container {
    std::string rootfs;      // merged view
    int64_t startup_ns = 0;  // namespace+rootfs assembly time
    uint64_t rootfs_bytes = 0;
  };

  // "docker run": assembles the merged rootfs + namespaces and returns the
  // started container. Startup work is real file-system work.
  common::StatusOr<Container> Start(const ImageSpec& image);

  // Runs the workload natively inside the "container" (containers execute
  // on the CPU directly; isolation is namespace bookkeeping, not dynamic
  // translation). Returns workload wall time in ns.
  int64_t Run(const Container& container, const std::function<void()>& workload);

  common::Status Stop(const Container& container);

  // Daemon-side base memory (layer cache), allocated+touched on first use.
  uint64_t daemon_bytes() const { return daemon_cache_.size(); }

 private:
  std::string LayerDir(const ImageSpec& image, int layer) const;

  std::string state_dir_;
  std::vector<uint8_t> daemon_cache_;
  int next_container_id_ = 0;
};

}  // namespace virt

#endif  // SRC_VIRT_CONTAINER_H_
