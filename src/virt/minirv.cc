#include "src/virt/minirv.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace virt {

namespace {

const std::map<std::string, RvOp>& Mnemonics() {
  static const auto* kMap = new std::map<std::string, RvOp>({
      {"add", RvOp::kAdd}, {"sub", RvOp::kSub}, {"mul", RvOp::kMul},
      {"div", RvOp::kDiv}, {"rem", RvOp::kRem}, {"and", RvOp::kAnd},
      {"or", RvOp::kOr}, {"xor", RvOp::kXor}, {"sll", RvOp::kSll},
      {"srl", RvOp::kSrl}, {"sra", RvOp::kSra}, {"slt", RvOp::kSlt},
      {"sltu", RvOp::kSltu},
      {"addi", RvOp::kAddi}, {"andi", RvOp::kAndi}, {"ori", RvOp::kOri},
      {"xori", RvOp::kXori}, {"slli", RvOp::kSlli}, {"srli", RvOp::kSrli},
      {"srai", RvOp::kSrai}, {"slti", RvOp::kSlti}, {"lui", RvOp::kLui},
      {"ld", RvOp::kLd}, {"lw", RvOp::kLw}, {"lwu", RvOp::kLwu},
      {"lb", RvOp::kLb}, {"lbu", RvOp::kLbu},
      {"sd", RvOp::kSd}, {"sw", RvOp::kSw}, {"sb", RvOp::kSb},
      {"beq", RvOp::kBeq}, {"bne", RvOp::kBne}, {"blt", RvOp::kBlt},
      {"bge", RvOp::kBge}, {"bltu", RvOp::kBltu}, {"bgeu", RvOp::kBgeu},
      {"jal", RvOp::kJal}, {"jalr", RvOp::kJalr},
      {"ecall", RvOp::kEcall}, {"ebreak", RvOp::kEbreak},
  });
  return *kMap;
}

void EncodeInstr(const RvInstr& in, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(in.op));
  out->push_back(in.rd);
  out->push_back(in.rs1);
  out->push_back(in.rs2);
  uint32_t imm = static_cast<uint32_t>(in.imm);
  out->push_back(imm & 0xFF);
  out->push_back((imm >> 8) & 0xFF);
  out->push_back((imm >> 16) & 0xFF);
  out->push_back((imm >> 24) & 0xFF);
}

bool DecodeInstr(const uint8_t* bytes, RvInstr* out) {
  uint8_t op = bytes[0];
  if (op > static_cast<uint8_t>(RvOp::kEbreak)) {
    return false;
  }
  out->op = static_cast<RvOp>(op);
  out->rd = bytes[1];
  out->rs1 = bytes[2];
  out->rs2 = bytes[3];
  uint32_t imm = static_cast<uint32_t>(bytes[4]) | (static_cast<uint32_t>(bytes[5]) << 8) |
                 (static_cast<uint32_t>(bytes[6]) << 16) |
                 (static_cast<uint32_t>(bytes[7]) << 24);
  out->imm = static_cast<int32_t>(imm);
  return out->rd < 32 && out->rs1 < 32 && out->rs2 < 32;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : line) {
    if (c == ';' || c == '#') break;  // comment
    if (c == ' ' || c == '\t' || c == ',') {
      if (!cur.empty()) {
        tokens.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

bool ParseImm(const std::string& token, const std::map<std::string, uint64_t>& symbols,
              int64_t* out) {
  auto it = symbols.find(token);
  if (it != symbols.end()) {
    *out = static_cast<int64_t>(it->second);
    return true;
  }
  char* end = nullptr;
  long long v = strtoll(token.c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || end == token.c_str()) {
    return false;
  }
  *out = v;
  return true;
}

// Parses "imm(reg)" memory operands.
bool ParseMemOperand(const std::string& token, int* reg, int32_t* offset) {
  auto open = token.find('(');
  auto close = token.find(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return false;
  }
  std::string off = token.substr(0, open);
  std::string reg_name = token.substr(open + 1, close - open - 1);
  *reg = RvRegisterNumber(reg_name);
  if (*reg < 0) return false;
  if (off.empty()) {
    *offset = 0;
    return true;
  }
  char* end = nullptr;
  long v = strtol(off.c_str(), &end, 0);
  if (*end != '\0') return false;
  *offset = static_cast<int32_t>(v);
  return true;
}

}  // namespace

int RvRegisterNumber(const std::string& name) {
  static const std::map<std::string, int>* kAbi = new std::map<std::string, int>({
      {"zero", 0}, {"ra", 1}, {"sp", 2}, {"gp", 3}, {"tp", 4},
      {"t0", 5}, {"t1", 6}, {"t2", 7}, {"s0", 8}, {"fp", 8}, {"s1", 9},
      {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13}, {"a4", 14}, {"a5", 15},
      {"a6", 16}, {"a7", 17},
      {"s2", 18}, {"s3", 19}, {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
      {"s8", 24}, {"s9", 25}, {"s10", 26}, {"s11", 27},
      {"t3", 28}, {"t4", 29}, {"t5", 30}, {"t6", 31},
  });
  auto it = kAbi->find(name);
  if (it != kAbi->end()) {
    return it->second;
  }
  if (name.size() >= 2 && name[0] == 'x') {
    char* end = nullptr;
    long v = strtol(name.c_str() + 1, &end, 10);
    if (*end == '\0' && v >= 0 && v < 32) {
      return static_cast<int>(v);
    }
  }
  return -1;
}

common::StatusOr<RvProgram> AssembleRv(const std::string& source) {
  RvProgram program;
  // Pass 1: compute label addresses.
  struct Line {
    std::vector<std::string> tokens;
    int lineno;
    bool in_data;
  };
  std::vector<Line> lines;
  {
    std::istringstream stream(source);
    std::string raw;
    int lineno = 0;
    bool in_data = false;
    uint64_t text_cursor = kRvTextBase;
    uint64_t data_cursor = kRvDataBase;
    while (std::getline(stream, raw)) {
      ++lineno;
      std::vector<std::string> tokens = Tokenize(raw);
      if (tokens.empty()) continue;
      // Labels (possibly followed by an instruction on the same line).
      while (!tokens.empty() && tokens[0].back() == ':') {
        std::string label = tokens[0].substr(0, tokens[0].size() - 1);
        program.symbols[label] = in_data ? data_cursor : text_cursor;
        tokens.erase(tokens.begin());
      }
      if (tokens.empty()) continue;
      // String literals collapse in Tokenize; re-extract for .asciiz.
      if (tokens[0] == ".asciiz") {
        auto q1 = raw.find('"');
        auto q2 = raw.rfind('"');
        if (q1 == std::string::npos || q2 <= q1) {
          return common::InvalidArgument("minirv:" + std::to_string(lineno) +
                                         ": bad .asciiz");
        }
        tokens = {".asciiz", raw.substr(q1 + 1, q2 - q1 - 1)};
      }
      if (tokens[0] == ".data") {
        in_data = true;
        continue;
      }
      if (tokens[0] == ".text") {
        in_data = false;
        continue;
      }
      if (tokens[0] == ".word") {
        data_cursor += 8;
      } else if (tokens[0] == ".space") {
        int64_t n = 0;
        ParseImm(tokens[1], {}, &n);
        data_cursor += static_cast<uint64_t>(n);
      } else if (tokens[0] == ".asciiz") {
        data_cursor += tokens[1].size() + 1;
      } else if (!in_data) {
        // "li" expands to lui+addi? We use addi with 32-bit imm: 1 instr.
        text_cursor += kRvInstrBytes;
      }
      lines.push_back({tokens, lineno, in_data});
    }
  }

  // Pass 2: emit.
  uint64_t text_cursor = kRvTextBase;
  for (const Line& line : lines) {
    const auto& t = line.tokens;
    auto err = [&](const std::string& msg) {
      return common::InvalidArgument("minirv:" + std::to_string(line.lineno) + ": " + msg);
    };
    if (t[0] == ".word") {
      int64_t v = 0;
      if (!ParseImm(t[1], program.symbols, &v)) return err("bad .word");
      uint64_t u = static_cast<uint64_t>(v);
      for (int i = 0; i < 8; ++i) program.data.push_back((u >> (8 * i)) & 0xFF);
      continue;
    }
    if (t[0] == ".space") {
      int64_t n = 0;
      if (!ParseImm(t[1], {}, &n)) return err("bad .space");
      program.data.insert(program.data.end(), static_cast<size_t>(n), 0);
      continue;
    }
    if (t[0] == ".asciiz") {
      program.data.insert(program.data.end(), t[1].begin(), t[1].end());
      program.data.push_back(0);
      continue;
    }
    if (line.in_data) {
      return err("instruction in .data section");
    }

    std::string mnem = t[0];
    RvInstr in = {};
    // Operand-count guard (exact formats are validated per-op below).
    auto need = [&](size_t n) { return t.size() >= n + 1; };
    if ((mnem == "li" || mnem == "mv") && !need(2)) return err("missing operands");
    if ((mnem == "j" || mnem == "call") && !need(1)) return err("missing operand");
    // Pseudo-instructions.
    if (mnem == "li") {  // li rd, imm -> addi rd, x0, imm
      in.op = RvOp::kAddi;
      int rd = RvRegisterNumber(t[1]);
      int64_t imm;
      if (rd < 0 || !ParseImm(t[2], program.symbols, &imm)) return err("bad li");
      in.rd = static_cast<uint8_t>(rd);
      in.rs1 = 0;
      in.imm = static_cast<int32_t>(imm);
    } else if (mnem == "mv") {  // mv rd, rs -> addi rd, rs, 0
      in.op = RvOp::kAddi;
      int rd = RvRegisterNumber(t[1]), rs = RvRegisterNumber(t[2]);
      if (rd < 0 || rs < 0) return err("bad mv");
      in.rd = static_cast<uint8_t>(rd);
      in.rs1 = static_cast<uint8_t>(rs);
    } else if (mnem == "j") {  // j label -> jal x0, label
      in.op = RvOp::kJal;
      int64_t target;
      if (!ParseImm(t[1], program.symbols, &target)) return err("bad j target");
      in.rd = 0;
      in.imm = static_cast<int32_t>(target - static_cast<int64_t>(text_cursor));
    } else if (mnem == "ret") {  // jalr x0, 0(ra)
      in.op = RvOp::kJalr;
      in.rd = 0;
      in.rs1 = 1;
    } else if (mnem == "call") {  // jal ra, label
      in.op = RvOp::kJal;
      int64_t target;
      if (!ParseImm(t[1], program.symbols, &target)) return err("bad call target");
      in.rd = 1;
      in.imm = static_cast<int32_t>(target - static_cast<int64_t>(text_cursor));
    } else {
      auto it = Mnemonics().find(mnem);
      if (it == Mnemonics().end()) return err("unknown mnemonic '" + mnem + "'");
      in.op = it->second;
      // Per-format operand counts.
      switch (in.op) {
        case RvOp::kEcall: case RvOp::kEbreak: break;
        case RvOp::kLui: case RvOp::kJal:
          if (!need(2)) return err("missing operands");
          break;
        case RvOp::kLd: case RvOp::kLw: case RvOp::kLwu: case RvOp::kLb:
        case RvOp::kLbu: case RvOp::kSd: case RvOp::kSw: case RvOp::kSb:
        case RvOp::kJalr:
          if (!need(2)) return err("missing operands");
          break;
        default:
          if (!need(3)) return err("missing operands");
          break;
      }
      switch (in.op) {
        case RvOp::kAdd: case RvOp::kSub: case RvOp::kMul: case RvOp::kDiv:
        case RvOp::kRem: case RvOp::kAnd: case RvOp::kOr: case RvOp::kXor:
        case RvOp::kSll: case RvOp::kSrl: case RvOp::kSra: case RvOp::kSlt:
        case RvOp::kSltu: {
          int rd = RvRegisterNumber(t[1]), rs1 = RvRegisterNumber(t[2]),
              rs2 = RvRegisterNumber(t[3]);
          if (rd < 0 || rs1 < 0 || rs2 < 0) return err("bad R-type operands");
          in.rd = rd; in.rs1 = rs1; in.rs2 = rs2;
          break;
        }
        case RvOp::kAddi: case RvOp::kAndi: case RvOp::kOri: case RvOp::kXori:
        case RvOp::kSlli: case RvOp::kSrli: case RvOp::kSrai: case RvOp::kSlti: {
          int rd = RvRegisterNumber(t[1]), rs1 = RvRegisterNumber(t[2]);
          int64_t imm;
          if (rd < 0 || rs1 < 0 || !ParseImm(t[3], program.symbols, &imm)) {
            return err("bad I-type operands");
          }
          in.rd = rd; in.rs1 = rs1; in.imm = static_cast<int32_t>(imm);
          break;
        }
        case RvOp::kLui: {
          int rd = RvRegisterNumber(t[1]);
          int64_t imm;
          if (rd < 0 || !ParseImm(t[2], program.symbols, &imm)) return err("bad lui");
          in.rd = rd; in.imm = static_cast<int32_t>(imm);
          break;
        }
        case RvOp::kLd: case RvOp::kLw: case RvOp::kLwu: case RvOp::kLb:
        case RvOp::kLbu: {
          int rd = RvRegisterNumber(t[1]);
          int rs1;
          int32_t off;
          if (rd < 0 || !ParseMemOperand(t[2], &rs1, &off)) return err("bad load");
          in.rd = rd; in.rs1 = rs1; in.imm = off;
          break;
        }
        case RvOp::kSd: case RvOp::kSw: case RvOp::kSb: {
          int rs2 = RvRegisterNumber(t[1]);
          int rs1;
          int32_t off;
          if (rs2 < 0 || !ParseMemOperand(t[2], &rs1, &off)) return err("bad store");
          in.rs2 = rs2; in.rs1 = rs1; in.imm = off;
          break;
        }
        case RvOp::kBeq: case RvOp::kBne: case RvOp::kBlt: case RvOp::kBge:
        case RvOp::kBltu: case RvOp::kBgeu: {
          int rs1 = RvRegisterNumber(t[1]), rs2 = RvRegisterNumber(t[2]);
          int64_t target;
          if (rs1 < 0 || rs2 < 0 || !ParseImm(t[3], program.symbols, &target)) {
            return err("bad branch");
          }
          in.rs1 = rs1; in.rs2 = rs2;
          in.imm = static_cast<int32_t>(target - static_cast<int64_t>(text_cursor));
          break;
        }
        case RvOp::kJal: {
          int rd = RvRegisterNumber(t[1]);
          int64_t target;
          if (rd < 0 || !ParseImm(t[2], program.symbols, &target)) return err("bad jal");
          in.rd = rd;
          in.imm = static_cast<int32_t>(target - static_cast<int64_t>(text_cursor));
          break;
        }
        case RvOp::kJalr: {
          int rd = RvRegisterNumber(t[1]);
          int rs1;
          int32_t off;
          if (rd < 0 || !ParseMemOperand(t[2], &rs1, &off)) return err("bad jalr");
          in.rd = rd; in.rs1 = rs1; in.imm = off;
          break;
        }
        case RvOp::kEcall:
        case RvOp::kEbreak:
          break;
      }
    }
    EncodeInstr(in, &program.text);
    text_cursor += kRvInstrBytes;
  }
  return program;
}

MiniRvMachine::MiniRvMachine(const Options& options) : options_(options) {
  regs_[2] = kRvStackTop;  // sp
}

uint8_t* MiniRvMachine::TranslatePage(uint64_t addr, bool write) {
  uint64_t page = addr / kRvPageSize;
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    return it->second.get();
  }
  if (committed_pages_ >= options_.ram_pages) {
    return nullptr;  // guest OOM
  }
  auto fresh = std::make_unique<uint8_t[]>(kRvPageSize);
  std::memset(fresh.get(), 0, kRvPageSize);
  uint8_t* raw = fresh.get();
  pages_[page] = std::move(fresh);
  ++committed_pages_;
  return raw;
}

bool MiniRvMachine::ReadMem(uint64_t addr, void* out, uint64_t len) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    uint8_t* page = TranslatePage(addr, false);
    if (page == nullptr) return false;
    uint64_t in_page = addr % kRvPageSize;
    uint64_t chunk = std::min(len, kRvPageSize - in_page);
    std::memcpy(dst, page + in_page, chunk);
    addr += chunk;
    dst += chunk;
    len -= chunk;
  }
  return true;
}

bool MiniRvMachine::WriteMem(uint64_t addr, const void* in, uint64_t len) {
  const uint8_t* src = static_cast<const uint8_t*>(in);
  while (len > 0) {
    uint8_t* page = TranslatePage(addr, true);
    if (page == nullptr) return false;
    uint64_t in_page = addr % kRvPageSize;
    uint64_t chunk = std::min(len, kRvPageSize - in_page);
    std::memcpy(page + in_page, src, chunk);
    addr += chunk;
    src += chunk;
    len -= chunk;
  }
  return true;
}

common::Status MiniRvMachine::Load(const RvProgram& program) {
  if (!WriteMem(kRvTextBase, program.text.data(), program.text.size()) ||
      !WriteMem(kRvDataBase, program.data.data(), program.data.size())) {
    return common::ResourceExhausted("guest RAM too small for program");
  }
  pc_ = kRvTextBase;
  return common::OkStatus();
}

uint64_t MiniRvMachine::footprint_bytes() const {
  return committed_pages_ * kRvPageSize + pages_.size() * 48 /* node overhead */;
}

int64_t MiniRvMachine::HandleEcall() {
  if (!options_.allow_syscalls) {
    return -38;  // ENOSYS
  }
  uint64_t nr = regs_[17];  // a7
  uint64_t a0 = regs_[10], a1 = regs_[11], a2 = regs_[12], a3 = regs_[13];
  switch (nr) {
    case 64: {  // write(fd, buf, len): emulator-style bounce buffer
      if (a2 > (1 << 20)) return -22;
      std::vector<uint8_t> buf(a2);
      if (!ReadMem(a1, buf.data(), a2)) return -14;
      if (a0 == 1 || a0 == 2) {
        console_.append(reinterpret_cast<char*>(buf.data()), a2);
        return static_cast<int64_t>(a2);
      }
      ssize_t n = ::write(static_cast<int>(a0), buf.data(), a2);
      return n >= 0 ? n : -errno;
    }
    case 63: {  // read(fd, buf, len)
      if (a2 > (1 << 20)) return -22;
      std::vector<uint8_t> buf(a2);
      ssize_t n = ::read(static_cast<int>(a0), buf.data(), a2);
      if (n < 0) return -errno;
      if (!WriteMem(a1, buf.data(), static_cast<uint64_t>(n))) return -14;
      return n;
    }
    case 56: {  // openat(dirfd, path, flags, mode)
      char path[512];
      uint64_t i = 0;
      for (; i < sizeof(path) - 1; ++i) {
        if (!ReadMem(a1 + i, &path[i], 1)) return -14;
        if (path[i] == '\0') break;
      }
      path[i] = '\0';
      int fd = ::openat(static_cast<int>(static_cast<int64_t>(a0)), path,
                        static_cast<int>(a2), static_cast<mode_t>(a3));
      return fd >= 0 ? fd : -errno;
    }
    case 57: {  // close
      return ::close(static_cast<int>(a0)) == 0 ? 0 : -errno;
    }
    case 62: {  // lseek
      off_t r = ::lseek(static_cast<int>(a0), static_cast<off_t>(a1),
                        static_cast<int>(a2));
      return r >= 0 ? r : -errno;
    }
    case 67: {  // pread64(fd, buf, len, off)
      if (a2 > (1 << 20)) return -22;
      std::vector<uint8_t> buf(a2);
      ssize_t n = ::pread(static_cast<int>(a0), buf.data(), a2, static_cast<off_t>(a3));
      if (n < 0) return -errno;
      if (!WriteMem(a1, buf.data(), static_cast<uint64_t>(n))) return -14;
      return n;
    }
    case 68: {  // pwrite64(fd, buf, len, off)
      if (a2 > (1 << 20)) return -22;
      std::vector<uint8_t> buf(a2);
      if (!ReadMem(a1, buf.data(), a2)) return -14;
      ssize_t n = ::pwrite(static_cast<int>(a0), buf.data(), a2, static_cast<off_t>(a3));
      return n >= 0 ? n : -errno;
    }
    case 82: {  // fsync
      return ::fsync(static_cast<int>(a0)) == 0 ? 0 : -errno;
    }
    case 35: {  // unlinkat(dirfd, path, flags)
      char path[512];
      uint64_t i = 0;
      for (; i < sizeof(path) - 1; ++i) {
        if (!ReadMem(a1 + i, &path[i], 1)) return -14;
        if (path[i] == '\0') break;
      }
      path[i] = '\0';
      return ::unlinkat(static_cast<int>(static_cast<int64_t>(a0)), path,
                        static_cast<int>(a2)) == 0
                 ? 0
                 : -errno;
    }
    case 93:  // exit
      halted_ = true;
      exit_code_ = static_cast<int64_t>(a0);
      return 0;
    case 113: {  // clock_gettime -> monotonic ns into (sec,nsec)
      timespec ts;
      clock_gettime(CLOCK_MONOTONIC, &ts);
      int64_t fields[2] = {ts.tv_sec, ts.tv_nsec};
      if (!WriteMem(a1, fields, sizeof(fields))) return -14;
      return 0;
    }
    case 124:  // sched_yield
      return 0;
    default:
      return -38;  // ENOSYS
  }
}

MiniRvMachine::RunResult MiniRvMachine::Run() {
  RunResult result;
  uint8_t raw[kRvInstrBytes];
  while (!halted_) {
    if (options_.max_instrs != 0 && result.executed >= options_.max_instrs) {
      result.error = "instruction budget exhausted";
      return result;
    }
    // Fetch + decode from guest memory every instruction (no translation
    // cache): the defining cost of pure emulation.
    if (!ReadMem(pc_, raw, kRvInstrBytes)) {
      result.error = "fetch fault";
      return result;
    }
    RvInstr in;
    if (!DecodeInstr(raw, &in)) {
      result.error = "illegal instruction";
      return result;
    }
    ++result.executed;
    uint64_t next_pc = pc_ + kRvInstrBytes;
    uint64_t rs1 = regs_[in.rs1];
    uint64_t rs2 = regs_[in.rs2];
    uint64_t imm = static_cast<uint64_t>(static_cast<int64_t>(in.imm));

    switch (in.op) {
      case RvOp::kAdd: set_reg(in.rd, rs1 + rs2); break;
      case RvOp::kSub: set_reg(in.rd, rs1 - rs2); break;
      case RvOp::kMul: set_reg(in.rd, rs1 * rs2); break;
      case RvOp::kDiv:
        set_reg(in.rd, rs2 == 0 ? ~0ull
                                : static_cast<uint64_t>(static_cast<int64_t>(rs1) /
                                                        static_cast<int64_t>(rs2)));
        break;
      case RvOp::kRem:
        set_reg(in.rd, rs2 == 0 ? rs1
                                : static_cast<uint64_t>(static_cast<int64_t>(rs1) %
                                                        static_cast<int64_t>(rs2)));
        break;
      case RvOp::kAnd: set_reg(in.rd, rs1 & rs2); break;
      case RvOp::kOr: set_reg(in.rd, rs1 | rs2); break;
      case RvOp::kXor: set_reg(in.rd, rs1 ^ rs2); break;
      case RvOp::kSll: set_reg(in.rd, rs1 << (rs2 & 63)); break;
      case RvOp::kSrl: set_reg(in.rd, rs1 >> (rs2 & 63)); break;
      case RvOp::kSra:
        set_reg(in.rd, static_cast<uint64_t>(static_cast<int64_t>(rs1) >> (rs2 & 63)));
        break;
      case RvOp::kSlt:
        set_reg(in.rd, static_cast<int64_t>(rs1) < static_cast<int64_t>(rs2) ? 1 : 0);
        break;
      case RvOp::kSltu: set_reg(in.rd, rs1 < rs2 ? 1 : 0); break;
      case RvOp::kAddi: set_reg(in.rd, rs1 + imm); break;
      case RvOp::kAndi: set_reg(in.rd, rs1 & imm); break;
      case RvOp::kOri: set_reg(in.rd, rs1 | imm); break;
      case RvOp::kXori: set_reg(in.rd, rs1 ^ imm); break;
      case RvOp::kSlli: set_reg(in.rd, rs1 << (imm & 63)); break;
      case RvOp::kSrli: set_reg(in.rd, rs1 >> (imm & 63)); break;
      case RvOp::kSrai:
        set_reg(in.rd, static_cast<uint64_t>(static_cast<int64_t>(rs1) >> (imm & 63)));
        break;
      case RvOp::kSlti:
        set_reg(in.rd,
                static_cast<int64_t>(rs1) < static_cast<int64_t>(imm) ? 1 : 0);
        break;
      case RvOp::kLui: set_reg(in.rd, imm << 12); break;

#define RV_LOAD(ctype, extend)                                        \
  {                                                                   \
    ctype v;                                                          \
    if (!ReadMem(rs1 + imm, &v, sizeof(v))) {                         \
      result.error = "load fault";                                    \
      return result;                                                  \
    }                                                                 \
    set_reg(in.rd, static_cast<uint64_t>(extend(v)));                 \
    break;                                                            \
  }
#define RV_STORE(ctype)                                               \
  {                                                                   \
    ctype v = static_cast<ctype>(rs2);                                \
    if (!WriteMem(rs1 + imm, &v, sizeof(v))) {                        \
      result.error = "store fault";                                   \
      return result;                                                  \
    }                                                                 \
    break;                                                            \
  }
      case RvOp::kLd: RV_LOAD(uint64_t, static_cast<uint64_t>)
      case RvOp::kLw: RV_LOAD(int32_t, static_cast<int64_t>)
      case RvOp::kLwu: RV_LOAD(uint32_t, static_cast<uint64_t>)
      case RvOp::kLb: RV_LOAD(int8_t, static_cast<int64_t>)
      case RvOp::kLbu: RV_LOAD(uint8_t, static_cast<uint64_t>)
      case RvOp::kSd: RV_STORE(uint64_t)
      case RvOp::kSw: RV_STORE(uint32_t)
      case RvOp::kSb: RV_STORE(uint8_t)
#undef RV_LOAD
#undef RV_STORE

      case RvOp::kBeq: if (rs1 == rs2) next_pc = pc_ + imm; break;
      case RvOp::kBne: if (rs1 != rs2) next_pc = pc_ + imm; break;
      case RvOp::kBlt:
        if (static_cast<int64_t>(rs1) < static_cast<int64_t>(rs2)) next_pc = pc_ + imm;
        break;
      case RvOp::kBge:
        if (static_cast<int64_t>(rs1) >= static_cast<int64_t>(rs2)) next_pc = pc_ + imm;
        break;
      case RvOp::kBltu: if (rs1 < rs2) next_pc = pc_ + imm; break;
      case RvOp::kBgeu: if (rs1 >= rs2) next_pc = pc_ + imm; break;
      case RvOp::kJal:
        set_reg(in.rd, next_pc);
        next_pc = pc_ + imm;
        break;
      case RvOp::kJalr:
        set_reg(in.rd, next_pc);
        next_pc = rs1 + imm;
        break;
      case RvOp::kEcall: {
        int64_t r = HandleEcall();
        set_reg(10, static_cast<uint64_t>(r));
        break;
      }
      case RvOp::kEbreak:
        result.error = "ebreak";
        return result;
    }
    pc_ = next_pc;
  }
  result.exited = true;
  result.exit_code = exit_code_;
  return result;
}

}  // namespace virt
