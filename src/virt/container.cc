#include "src/virt/container.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/common/time_util.h"
#include "src/common/unique_fd.h"

namespace virt {

namespace {

common::Status MakeDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return common::Internal("mkdir failed: " + path);
  }
  return common::OkStatus();
}

common::Status WriteFileBytes(const std::string& path, const std::vector<uint8_t>& data) {
  common::UniqueFd fd(open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (!fd.valid()) {
    return common::Internal("open failed: " + path);
  }
  if (write(fd.get(), data.data(), data.size()) != static_cast<ssize_t>(data.size())) {
    return common::Internal("write failed: " + path);
  }
  return common::OkStatus();
}

void RemoveTree(const std::string& path) {
  std::string cmd = "rm -rf '" + path + "'";
  int ignored = system(cmd.c_str());
  (void)ignored;
}

}  // namespace

ContainerRuntime::ContainerRuntime(std::string state_dir)
    : state_dir_(std::move(state_dir)) {
  (void)MakeDir(state_dir_);
}

ContainerRuntime::~ContainerRuntime() { RemoveTree(state_dir_); }

std::string ContainerRuntime::LayerDir(const ImageSpec& image, int layer) const {
  return state_dir_ + "/layers-" + image.name + "-" + std::to_string(layer);
}

common::Status ContainerRuntime::PrepareImage(const ImageSpec& image) {
  // Daemon layer cache: allocate + touch once (models dockerd base RSS).
  if (daemon_cache_.empty() && image.daemon_cache_bytes > 0) {
    daemon_cache_.assign(image.daemon_cache_bytes, 0);
    for (size_t i = 0; i < daemon_cache_.size(); i += 4096) {
      daemon_cache_[i] = static_cast<uint8_t>(i);
    }
  }
  std::vector<uint8_t> contents(image.bytes_per_file);
  for (size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<uint8_t>(i * 31);
  }
  for (int layer = 0; layer < image.num_layers; ++layer) {
    std::string dir = LayerDir(image, layer);
    RETURN_IF_ERROR(MakeDir(dir));
    for (int f = 0; f < image.files_per_layer; ++f) {
      std::string path = dir + "/f" + std::to_string(f);
      struct stat st;
      if (stat(path.c_str(), &st) == 0) {
        continue;  // already pulled
      }
      RETURN_IF_ERROR(WriteFileBytes(path, contents));
    }
  }
  return common::OkStatus();
}

common::StatusOr<ContainerRuntime::Container> ContainerRuntime::Start(
    const ImageSpec& image) {
  Container c;
  int id = next_container_id_++;
  c.rootfs = state_dir_ + "/ctr-" + std::to_string(id);
  int64_t t0 = common::MonotonicNanos();

  // 1. Merged rootfs assembly: link every layer file into the container's
  //    view (overlayfs-snapshot-style; hard links model the copy-up-free
  //    path, falling back to copies across filesystems).
  RETURN_IF_ERROR(MakeDir(c.rootfs));
  for (int layer = 0; layer < image.num_layers; ++layer) {
    std::string dir = LayerDir(image, layer);
    std::string target_dir = c.rootfs + "/layer" + std::to_string(layer);
    RETURN_IF_ERROR(MakeDir(target_dir));
    for (int f = 0; f < image.files_per_layer; ++f) {
      std::string src = dir + "/f" + std::to_string(f);
      std::string dst = target_dir + "/f" + std::to_string(f);
      if (link(src.c_str(), dst.c_str()) != 0) {
        // Cross-device: copy.
        FILE* in = fopen(src.c_str(), "rb");
        FILE* out = fopen(dst.c_str(), "wb");
        if (in == nullptr || out == nullptr) {
          if (in != nullptr) fclose(in);
          if (out != nullptr) fclose(out);
          return common::Internal("rootfs assembly failed");
        }
        char buf[4096];
        size_t n;
        while ((n = fread(buf, 1, sizeof(buf), in)) > 0) {
          fwrite(buf, 1, n, out);
        }
        fclose(in);
        fclose(out);
      }
      c.rootfs_bytes += static_cast<uint64_t>(image.bytes_per_file);
    }
  }

  // 2. Namespace / cgroup bookkeeping: the records a runtime writes under
  //    /sys/fs/cgroup and /run — real file creation + fsync-free writes.
  std::string meta = c.rootfs + "/.runtime";
  RETURN_IF_ERROR(MakeDir(meta));
  static const char* kNamespaces[] = {"pid", "net", "ipc", "uts", "mnt", "user", "cgroup"};
  for (const char* ns : kNamespaces) {
    std::vector<uint8_t> rec(512, 0);
    std::snprintf(reinterpret_cast<char*>(rec.data()), rec.size(),
                  "namespace=%s\ncontainer=%d\nimage=%s\n", ns, id, image.name.c_str());
    RETURN_IF_ERROR(WriteFileBytes(meta + "/" + ns, rec));
  }
  static const char* kCgroupKnobs[] = {"cpu.max",    "memory.max", "io.max",
                                       "pids.max",   "cpu.weight", "memory.low"};
  for (const char* knob : kCgroupKnobs) {
    std::vector<uint8_t> rec(64, '1');
    RETURN_IF_ERROR(WriteFileBytes(meta + "/" + knob, rec));
  }

  c.startup_ns = common::MonotonicNanos() - t0;
  return c;
}

int64_t ContainerRuntime::Run(const Container& container,
                              const std::function<void()>& workload) {
  int64_t t0 = common::MonotonicNanos();
  workload();
  return common::MonotonicNanos() - t0;
}

common::Status ContainerRuntime::Stop(const Container& container) {
  RemoveTree(container.rootfs);
  return common::OkStatus();
}

}  // namespace virt
