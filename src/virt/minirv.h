// MiniRV: a small RISC-style guest ISA with an assembler and a
// fetch-decode-execute emulator using a softmmu (per-access page-table
// translation). This is the repo's stand-in for "QEMU without KVM" in the
// paper's Fig. 8 (§4.3): same mechanism class — every guest instruction is
// fetched from guest memory and decoded at execution time, and every guest
// memory access goes through address translation — which yields the
// emulator's signature cost profile (tiny startup, large per-instruction
// slowdown).
//
// The ISA is RV-flavored: 32 x-registers (x0 hardwired to zero), a7 carries
// the syscall number for ECALL (Linux riscv64 convention), a0..a5 arguments.
// Instructions use a fixed 8-byte encoding (op, rd, rs1, rs2, imm32).
#ifndef SRC_VIRT_MINIRV_H_
#define SRC_VIRT_MINIRV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace virt {

enum class RvOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem, kAnd, kOr, kXor, kSll, kSrl, kSra,
  kSlt, kSltu,
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti,
  kLui,
  kLd, kLw, kLwu, kLb, kLbu, kSd, kSw, kSb,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kJal, kJalr,
  kEcall, kEbreak,
};

struct RvInstr {
  RvOp op;
  uint8_t rd;
  uint8_t rs1;
  uint8_t rs2;
  int32_t imm;
};

inline constexpr size_t kRvInstrBytes = 8;
inline constexpr uint64_t kRvPageSize = 4096;
inline constexpr uint64_t kRvTextBase = 0x10000;
inline constexpr uint64_t kRvDataBase = 0x400000;
inline constexpr uint64_t kRvStackTop = 0x800000;

// Two-pass assembler for the MiniRV text syntax:
//   label:
//     addi a0, x0, 42     ; abi names (a0..a7, sp, ra, t0..) or x0..x31
//     beq a0, x0, done
//     ld t0, 8(sp)
//     .data / .text / .asciiz "str" / .word N / .space N
// Returns the program image (text at kRvTextBase, data at kRvDataBase).
struct RvProgram {
  std::vector<uint8_t> text;
  std::vector<uint8_t> data;
  std::map<std::string, uint64_t> symbols;
};

common::StatusOr<RvProgram> AssembleRv(const std::string& source);

// The emulator.
class MiniRvMachine {
 public:
  struct Options {
    uint64_t ram_pages = 2048;    // 8 MiB guest RAM
    uint64_t max_instrs = 0;      // 0 = unlimited
    bool allow_syscalls = true;   // ECALL passthrough (write/read/exit/...)
  };

  explicit MiniRvMachine(const Options& options);

  common::Status Load(const RvProgram& program);

  struct RunResult {
    bool exited = false;
    int64_t exit_code = 0;
    uint64_t executed = 0;
    std::string error;  // non-empty on fault
  };
  RunResult Run();

  uint64_t reg(int index) const { return regs_[index]; }
  void set_reg(int index, uint64_t value) {
    if (index != 0) regs_[index] = value;
  }

  // Guest memory access through the softmmu (public for tests/loaders).
  bool ReadMem(uint64_t addr, void* out, uint64_t len);
  bool WriteMem(uint64_t addr, const void* in, uint64_t len);

  // Captured output of guest write(2) to fds 1/2.
  const std::string& console() const { return console_; }

  // Memory footprint: committed guest pages + page-table structures.
  uint64_t footprint_bytes() const;

 private:
  // Softmmu: page-granular table, filled on demand (guest RAM is
  // demand-allocated like an emulator's).
  uint8_t* TranslatePage(uint64_t addr, bool write);

  int64_t HandleEcall();

  Options options_;
  uint64_t regs_[32] = {0};
  uint64_t pc_ = kRvTextBase;
  std::map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
  uint64_t committed_pages_ = 0;
  std::string console_;
  bool halted_ = false;
  int64_t exit_code_ = 0;
};

// Parses a register name ("x7", "a0", "sp", "ra", "t0".."t6", "s0".."s11");
// returns -1 if invalid.
int RvRegisterNumber(const std::string& name);

}  // namespace virt

#endif  // SRC_VIRT_MINIRV_H_
