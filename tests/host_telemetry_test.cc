// Telemetry subsystem under the deterministic supervisor harness: span
// ordering across park/resume on a manual clock, counter exactness (every
// submitted job ends in exactly one outcome), tenant retention (Forget
// drops series AND spans), resume-queue latency attribution, IoStats/io_*
// consistency under a concurrent completion storm (the TSan CI job runs
// this), export formats, and interpreter hot-function profiling.
//
// Tests construct their OWN Telemetry instance — never Telemetry::Global()
// — so assertions can demand exact counts without cross-test bleed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/host/host.h"
#include "src/host/telemetry.h"
#include "tests/wali_test_util.h"

namespace {

constexpr int64_t kMs = 1000000;

std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

// Sleeps 50ms once, does a little compute, exits 42.
const char* kSleeperGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32)
    (i64.store (i32.const 512) (i64.const 0))
    (i64.store (i32.const 520) (i64.const 50000000))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 100)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (i32.const 42))
)";

// Pure compute, no syscalls: deterministic fuel, completes immediately.
const char* kBurnGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32)
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 20000)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (i32.const 0))
)";

// Traps on its first instruction.
const char* kTrapGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    unreachable)
)";

struct ManualClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);

  std::function<int64_t()> fn() const {
    auto n = now;
    return [n] { return n->load(std::memory_order_acquire); };
  }
  void Advance(int64_t nanos) { now->fetch_add(nanos, std::memory_order_acq_rel); }
};

// Same shape as host_io_test's IoWorld, plus the telemetry sink. Members
// are ordered so the supervisor (declared last) shuts down first, while the
// backend and the telemetry it still references are alive.
struct TelWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<host::ModuleCache> cache;
  std::unique_ptr<host::Telemetry> tel;
  std::unique_ptr<host::FakeIoBackend> fake =
      std::make_unique<host::FakeIoBackend>();
  ManualClock clock;
  std::unique_ptr<host::Supervisor> sup;
};

TelWorld MakeTelWorld(size_t workers, bool with_backend = true,
                      host::Telemetry::Options topts = {},
                      size_t queue_depth = 0, bool start_paused = false) {
  TelWorld w;
  w.linker = std::make_unique<wasm::Linker>();
  w.runtime = std::make_unique<wali::WaliRuntime>(w.linker.get());
  w.cache = std::make_unique<host::ModuleCache>();
  w.tel = std::make_unique<host::Telemetry>(topts);
  w.cache->SetTelemetry(w.tel.get());
  host::Supervisor::Options opts;
  opts.workers = workers;
  opts.queue_depth = queue_depth;
  opts.start_paused = start_paused;
  opts.clock = w.clock.fn();
  opts.pool.max_idle_per_module = workers;
  opts.telemetry = w.tel.get();
  if (with_backend) {
    w.fake->SetTelemetry(w.tel.get());
    opts.io_backend = w.fake.get();
  }
  w.sup = std::make_unique<host::Supervisor>(w.runtime.get(), opts);
  return w;
}

host::GuestJob MakeJob(std::shared_ptr<const wasm::Module> module,
                       const std::string& tenant, int64_t deadline = 0) {
  host::GuestJob job;
  job.module = module;
  job.argv = {tenant};
  job.tenant = tenant;
  job.deadline_nanos = deadline;
  return job;
}

bool WaitForPending(const host::FakeIoBackend& fake, size_t n,
                    int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (fake.pending() == n) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return fake.pending() == n;
}

uint64_t CounterValue(const host::Telemetry::Snapshot& s,
                      const std::string& name) {
  for (const auto& [n, v] : s.registry.counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t GaugeValue(const host::Telemetry::Snapshot& s,
                   const std::string& name) {
  for (const auto& [n, v] : s.registry.gauges) {
    if (n == name) return v;
  }
  return 0;
}

const metrics::Registry::HistogramSnapshot* FindHistogram(
    const host::Telemetry::Snapshot& s, const std::string& name) {
  for (const auto& h : s.registry.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// Events of one run, in ring (= recording) order.
std::vector<host::TraceEvent> RunEvents(const host::Telemetry::Snapshot& s,
                                        uint64_t run_id) {
  std::vector<host::TraceEvent> out;
  for (const host::TraceEvent& e : s.spans) {
    if (e.run_id == run_id) out.push_back(e);
  }
  return out;
}

#if defined(HOST_TELEMETRY)

TEST(HostTelemetry, SpanOrderingAcrossParkResume) {
  // Every lifecycle stage of a parked run lands as a span event with the
  // supervisor's (manual) clock, so submit <= dispatch <= park <=
  // io_complete <= resume <= finish holds with EXACT timestamps.
  TelWorld w = MakeTelWorld(1, /*with_backend=*/true, {}, /*queue_depth=*/0,
                            /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  w.clock.Advance(1 * kMs);
  w.sup->Resume();  // dispatch at t=1ms
  ASSERT_TRUE(WaitForPending(*w.fake, 1));  // park also at t=1ms
  w.sup->Pause();
  w.clock.Advance(2 * kMs);
  w.fake->AdvanceBy(50 * kMs);  // io_complete at t=3ms (workers paused)
  w.clock.Advance(3 * kMs);
  w.sup->Resume();  // resume + finish at t=6ms
  host::RunReport r = fut.get();
  ASSERT_TRUE(r.completed()) << r.trap_message;

  host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
  ASSERT_FALSE(s.spans.empty());
  std::vector<host::TraceEvent> ev = RunEvents(s, s.spans[0].run_id);
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_EQ(ev[0].event, host::SpanEvent::kSubmit);
  EXPECT_EQ(ev[1].event, host::SpanEvent::kDispatch);
  EXPECT_EQ(ev[2].event, host::SpanEvent::kPark);
  EXPECT_EQ(ev[3].event, host::SpanEvent::kIoComplete);
  EXPECT_EQ(ev[4].event, host::SpanEvent::kResume);
  EXPECT_EQ(ev[5].event, host::SpanEvent::kFinish);
  EXPECT_EQ(ev[0].t_nanos, 0);
  EXPECT_EQ(ev[1].t_nanos, 1 * kMs);
  EXPECT_EQ(ev[2].t_nanos, 1 * kMs);
  EXPECT_EQ(ev[3].t_nanos, 3 * kMs);
  EXPECT_EQ(ev[4].t_nanos, 6 * kMs);
  EXPECT_EQ(ev[5].t_nanos, 6 * kMs);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].t_nanos, ev[i].t_nanos);
  }
  EXPECT_EQ(ev[5].outcome, host::Outcome::kCompleted);
  EXPECT_GT(ev[2].fuel, 0u) << "park carries partial fuel";
  EXPECT_GE(ev[5].fuel, ev[2].fuel);
  // The tenant resolves by name.
  ASSERT_NE(s.tenant_names.find(ev[0].tenant), s.tenant_names.end());
  EXPECT_EQ(s.tenant_names.at(ev[0].tenant), "t");
}

TEST(HostTelemetry, CounterExactnessAcrossAllOutcomes) {
  // Sum of per-outcome counters == jobs submitted, with every one of the
  // five outcomes represented. One worker, bounded queue, paused pickup so
  // admission decisions are deterministic.
  TelWorld w = MakeTelWorld(1, /*with_backend=*/false, {}, /*queue_depth=*/4,
                            /*start_paused=*/true);
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok()) << burner.status().ToString();
  auto trapper = w.cache->Load(WrapModule(kTrapGuest));
  ASSERT_TRUE(trapper.ok()) << trapper.status().ToString();

  host::TenantBudget broke;
  broke.max_fuel = 1;  // the budget tenant's run stops almost immediately
  w.sup->ledger().SetBudget("broke", broke);

  std::vector<std::future<host::RunReport>> futs;
  futs.push_back(w.sup->Submit(MakeJob(*burner, "t")));                 // completed
  futs.push_back(w.sup->Submit(MakeJob(*burner, "t", /*ddl=*/5 * kMs)));  // shed
  futs.push_back(w.sup->Submit(MakeJob(*trapper, "t")));                // trapped
  futs.push_back(w.sup->Submit(MakeJob(*burner, "t")));                 // completed
  // Queue (depth 4) is now full for "t": the next two bounce.
  futs.push_back(w.sup->Submit(MakeJob(*burner, "t")));                 // rejected
  futs.push_back(w.sup->Submit(MakeJob(*burner, "t")));                 // rejected
  futs.push_back(w.sup->Submit(MakeJob(*burner, "broke")));             // budget

  w.clock.Advance(10 * kMs);  // expires the 5ms deadline while still queued
  w.sup->Resume();
  int completed = 0, trapped = 0, shed = 0, rejected = 0, budget = 0;
  for (auto& f : futs) {
    switch (f.get().outcome) {
      case host::Outcome::kCompleted: ++completed; break;
      case host::Outcome::kTrapped: ++trapped; break;
      case host::Outcome::kShed: ++shed; break;
      case host::Outcome::kRejected: ++rejected; break;
      case host::Outcome::kBudget: ++budget; break;
    }
  }
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(trapped, 1);
  EXPECT_EQ(shed, 1);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(budget, 1);

  host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
  EXPECT_EQ(CounterValue(s, "supervisor_jobs_submitted_total"), 7u);
  uint64_t outcome_sum = 0;
  for (size_t i = 0; i < host::kNumOutcomes; ++i) {
    outcome_sum += CounterValue(
        s, std::string("supervisor_jobs_total{outcome=\"") +
               host::OutcomeName(static_cast<host::Outcome>(i)) + "\"}");
  }
  EXPECT_EQ(outcome_sum, 7u) << "every submitted job ends in exactly one outcome";
  EXPECT_EQ(CounterValue(s, "supervisor_jobs_total{outcome=\"completed\"}"), 2u);
  EXPECT_EQ(CounterValue(s, "supervisor_jobs_total{outcome=\"rejected\"}"), 2u);
  EXPECT_EQ(GaugeValue(s, "supervisor_queue_depth"), 0);

  // Per-tenant series agree, and every span run closed with one kFinish.
  uint64_t tenant_submitted = 0, tenant_outcomes = 0;
  for (const auto& [name, series] : s.tenants) {
    tenant_submitted += series.submitted;
    for (size_t i = 0; i < host::kNumOutcomes; ++i) {
      tenant_outcomes += series.outcomes[i];
    }
  }
  EXPECT_EQ(tenant_submitted, 7u);
  EXPECT_EQ(tenant_outcomes, 7u);
  int submits = 0, finishes = 0;
  for (const host::TraceEvent& e : s.spans) {
    submits += e.event == host::SpanEvent::kSubmit;
    finishes += e.event == host::SpanEvent::kFinish;
  }
  EXPECT_EQ(submits, 7);
  EXPECT_EQ(finishes, 7);
  // The trap surfaced in the ledger's denial counters? No — traps are not
  // denials; the fuel-slice stop for "broke" is:
  EXPECT_GE(CounterValue(s, "ledger_denials_total{resource=\"fuel\"}") +
                CounterValue(s, "supervisor_jobs_total{outcome=\"budget\"}"),
            1u);
}

TEST(HostTelemetry, ForgetDropsSeriesAndSpans) {
  // Mirrors the ledger retention test: Supervisor::ForgetTenant (and the
  // TenantLedger::Forget it delegates to) must drop the tenant's metric
  // series and every span it still has in the ring — queued jobs reject,
  // other tenants are untouched.
  TelWorld w = MakeTelWorld(1, /*with_backend=*/false);
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  EXPECT_TRUE(w.sup->Submit(MakeJob(*burner, "gone")).get().completed());
  EXPECT_TRUE(w.sup->Submit(MakeJob(*burner, "kept")).get().completed());
  {
    host::Telemetry::Snapshot before = w.tel->TakeSnapshot();
    EXPECT_EQ(before.tenants.size(), 2u);
    EXPECT_FALSE(before.spans.empty());
  }

  // A job still queued when the tenant is forgotten resolves as rejected.
  w.sup->Pause();
  std::future<host::RunReport> queued = w.sup->Submit(MakeJob(*burner, "gone"));
  w.sup->ForgetTenant("gone");
  EXPECT_EQ(queued.get().outcome, host::Outcome::kRejected);
  w.sup->Resume();

  host::Telemetry::Snapshot after = w.tel->TakeSnapshot();
  ASSERT_EQ(after.tenants.size(), 1u);
  EXPECT_EQ(after.tenants[0].first, "kept");
  EXPECT_EQ(after.tenants[0].second.submitted, 1u);
  for (const host::TraceEvent& e : after.spans) {
    auto it = after.tenant_names.find(e.tenant);
    if (it != after.tenant_names.end()) {
      EXPECT_NE(it->second, "gone") << "forgotten tenant's spans must be gone";
    }
  }
  // The ledger agrees (same retention hook).
  EXPECT_EQ(w.sup->ledger().usage("gone").runs, 0u);
}

TEST(HostTelemetry, ResumeQueueNanosIsCompletionToRedispatch) {
  // resume_queue_nanos isolates "completion delivered -> worker re-dispatch"
  // from total blocked time: park at t=0, completion at t=3ms (workers
  // paused), re-dispatch at t=8ms => blocked 8ms, of which 5ms resume-queue.
  TelWorld w = MakeTelWorld(1);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok());

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));  // parked at t=0
  w.sup->Pause();
  w.clock.Advance(3 * kMs);
  w.fake->AdvanceBy(50 * kMs);  // ready_stamp = 3ms; no worker may take it
  w.clock.Advance(5 * kMs);
  w.sup->Resume();  // re-dispatch at t=8ms

  host::RunReport r = fut.get();
  ASSERT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.blocked_nanos, 8 * kMs);
  EXPECT_EQ(r.resume_queue_nanos, 5 * kMs);

  host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
  const metrics::Registry::HistogramSnapshot* h =
      FindHistogram(s, "supervisor_resume_queue_nanos");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(h->sum, 5 * kMs);
}

TEST(HostTelemetry, IoStatsAndCountersConsistentUnderCompletionStorm) {
  // Concurrent park/complete storm (drive this under TSan): scripted
  // completions from one thread race the manual-clock advancer and
  // snapshot readers; afterwards every io_* series balances exactly, and a
  // shutdown with parked guests accounts its cancellations.
  TelWorld w = MakeTelWorld(4);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok());

  constexpr size_t kRuns = 12;
  std::vector<std::future<host::RunReport>> futs;
  for (size_t i = 0; i < kRuns; ++i) {
    futs.push_back(w.sup->Submit(MakeJob(*module, "t" + std::to_string(i % 3))));
  }
  ASSERT_TRUE(WaitForPending(*w.fake, kRuns));
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  ASSERT_EQ(cookies.size(), kRuns);

  std::thread completer([&] {
    for (size_t i = 0; i < cookies.size() / 2; ++i) {
      w.fake->CompleteWithResult(cookies[i], 0);
    }
  });
  std::thread advancer([&] {
    for (int i = 0; i < 10; ++i) {
      w.fake->AdvanceBy(5 * kMs);  // 50ms total: the rest complete by timer
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) {
      (void)w.sup->io_stats();
      host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
      EXPECT_LE(GaugeValue(s, "io_in_flight{io_backend=\"fake\"}"), static_cast<int64_t>(kRuns));
    }
  });
  completer.join();
  advancer.join();
  reader.join();
  for (auto& f : futs) {
    EXPECT_TRUE(f.get().completed());
  }

  host::Supervisor::IoStats io = w.sup->io_stats();
  EXPECT_EQ(io.parks_total, kRuns);
  EXPECT_EQ(io.resumes_total, kRuns);
  EXPECT_EQ(io.in_flight_now, 0u);
  {
    host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
    EXPECT_EQ(CounterValue(s, "io_submits_total{io_backend=\"fake\"}"), kRuns);
    EXPECT_EQ(CounterValue(s, "io_completions_total{io_backend=\"fake\"}"), kRuns);
    EXPECT_EQ(CounterValue(s, "io_cancels_total{io_backend=\"fake\"}"), 0u);
    EXPECT_EQ(GaugeValue(s, "io_in_flight{io_backend=\"fake\"}"), 0);
  }

  // Shutdown with guests still parked cancels their ops; the io_* series
  // keep balancing: submits == completions + cancels, in-flight back to 0.
  std::future<host::RunReport> parked1 = w.sup->Submit(MakeJob(*module, "t0"));
  std::future<host::RunReport> parked2 = w.sup->Submit(MakeJob(*module, "t1"));
  ASSERT_TRUE(WaitForPending(*w.fake, 2));
  w.sup->Shutdown();
  (void)parked1.get();
  (void)parked2.get();
  host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
  EXPECT_EQ(CounterValue(s, "io_submits_total{io_backend=\"fake\"}"),
            CounterValue(s, "io_completions_total{io_backend=\"fake\"}") +
                CounterValue(s, "io_cancels_total{io_backend=\"fake\"}"));
  EXPECT_EQ(CounterValue(s, "io_cancels_total{io_backend=\"fake\"}"), 2u);
  EXPECT_EQ(GaugeValue(s, "io_in_flight{io_backend=\"fake\"}"), 0);
}

TEST(HostTelemetry, SpanRingIsBoundedAndCountsDrops) {
  host::Telemetry::Options topts;
  topts.span_capacity = 4;
  TelWorld w = MakeTelWorld(1, /*with_backend=*/false, topts);
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  // 3 runs x 3 events (submit/dispatch/finish) = 9 > 4: oldest spill out.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(w.sup->Submit(MakeJob(*burner, "t")).get().completed());
  }
  host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
  EXPECT_LE(s.spans.size(), 4u);
  EXPECT_EQ(s.spans.size() + s.spans_dropped, 9u);
  // Counters are unaffected by span eviction.
  EXPECT_EQ(CounterValue(s, "supervisor_jobs_submitted_total"), 3u);
}

TEST(HostTelemetry, PrometheusJsonAndChromeTraceExports) {
  TelWorld w = MakeTelWorld(1, /*with_backend=*/false);
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());
  EXPECT_TRUE(w.sup->Submit(MakeJob(*burner, "t")).get().completed());
  EXPECT_TRUE(w.sup->Submit(MakeJob(*burner, "t")).get().completed());

  std::string prom = w.tel->PrometheusText();
  EXPECT_NE(prom.find("# TYPE supervisor_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("supervisor_jobs_submitted_total 2"), std::string::npos);
  EXPECT_NE(prom.find("supervisor_jobs_total{outcome=\"completed\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE supervisor_run_wall_nanos histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("supervisor_run_wall_nanos_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("supervisor_run_wall_nanos_count 2"), std::string::npos);
  EXPECT_NE(prom.find("host_tenant_jobs_submitted_total{tenant=\"t\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("wasm_func_entries_total"), std::string::npos)
      << "profiled function entries must export";

  std::string json = w.tel->JsonText();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"hot_functions\""), std::string::npos);
  EXPECT_NE(json.find("\"supervisor_jobs_submitted_total\":2"),
            std::string::npos);

  std::string trace = w.tel->ChromeTraceJson();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("tenant:t"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"run\""), std::string::npos);
}

TEST(HostTelemetry, HotFunctionProfileCountsEntriesAndFuel) {
  // The interpreter's frame-entry hooks feed per-function counters on the
  // module; the cache registered the module, so the snapshot surfaces it.
  // One local function, N runs => entries == N and, with complete fuel
  // attribution (HarvestResult flushes the open window), per-function fuel
  // == total fuel the reports billed.
  TelWorld w = MakeTelWorld(1, /*with_backend=*/false);
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  uint64_t fuel_total = 0;
  constexpr int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    host::RunReport r = w.sup->Submit(MakeJob(*burner, "t")).get();
    ASSERT_TRUE(r.completed());
    fuel_total += r.fuel_consumed;
  }
  ASSERT_GT(fuel_total, 0u);

  host::Telemetry::Snapshot s = w.tel->TakeSnapshot();
  ASSERT_EQ(s.hot_functions.size(), 1u);
  const host::Telemetry::HotFunction& hf = s.hot_functions[0];
  EXPECT_FALSE(hf.module.empty());
  EXPECT_FALSE(hf.func.empty());
  EXPECT_EQ(hf.entries, static_cast<uint64_t>(kRuns));
  EXPECT_EQ(hf.fuel, fuel_total)
      << "per-function fuel must sum to executed instructions";
}

#else  // !HOST_TELEMETRY

// The hooks are compiled out, but the subsystem itself must keep building
// and exporting (empty) data: the registry is still a usable library.
TEST(HostTelemetry, SubsystemBuildsWithHooksCompiledOut) {
  host::Telemetry tel;
  host::Telemetry::RunHandle run = tel.BeginRun("t", 0);
  tel.Record(run, host::SpanEvent::kDispatch, 1);
  tel.EndRun(run, host::Outcome::kCompleted, 2);
  host::Telemetry::Snapshot s = tel.TakeSnapshot();
  EXPECT_EQ(s.spans.size(), 3u);
  EXPECT_FALSE(tel.PrometheusText().empty());
}

#endif  // HOST_TELEMETRY

}  // namespace
