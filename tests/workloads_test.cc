// Workload suite sanity: every runnable analog executes under WALI without
// trapping, produces consistent results across runs and backends
// (differential: WALI vs native vs MiniRV where applicable), and emits the
// syscall mix its real counterpart is known for.
#include <gtest/gtest.h>

#include "src/virt/minirv.h"
#include "src/workloads/workloads.h"

namespace {

using workloads::AllWorkloads;
using workloads::FindWorkload;
using workloads::RunUnderWali;
using workloads::WaliRunStats;

TEST(Workloads, RegistryShape) {
  EXPECT_GE(AllWorkloads().size(), 15u);  // 5 runnable + Table 1 corpus
  int runnable = 0;
  for (const auto& w : AllWorkloads()) {
    if (!w.wat.empty()) ++runnable;
  }
  EXPECT_EQ(runnable, 5);
  EXPECT_NE(FindWorkload("lua"), nullptr);
  EXPECT_NE(FindWorkload("sqlite3"), nullptr);
  EXPECT_EQ(FindWorkload("nonexistent"), nullptr);
}

class RunnableWorkloads : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnableWorkloads, RunsCleanUnderWali) {
  const workloads::Workload* w = FindWorkload(GetParam());
  ASSERT_NE(w, nullptr);
  WaliRunStats stats = RunUnderWali(*w, 3);
  ASSERT_TRUE(stats.result.ok_or_exit0()) << stats.result.trap_message;
  EXPECT_GT(stats.total_syscalls, 0u);
  EXPECT_GT(stats.wall_ns, 0);
}

INSTANTIATE_TEST_SUITE_P(All, RunnableWorkloads,
                         ::testing::Values("lua", "bash", "sqlite3", "memcached",
                                           "paho-bench"));

TEST(Workloads, DeterministicAcrossRuns) {
  const workloads::Workload* w = FindWorkload("lua");
  auto r1 = RunUnderWali(*w, 4);
  auto r2 = RunUnderWali(*w, 4);
  ASSERT_TRUE(r1.result.ok());
  ASSERT_TRUE(r2.result.ok());
  EXPECT_EQ(r1.result.values[0].i32(), r2.result.values[0].i32());
}

TEST(Workloads, LuaDifferentialWaliVsNative) {
  // The checksum under WALI must equal the native implementation's
  // (mod 2^32): same computation, different substrate.
  const workloads::Workload* w = FindWorkload("lua");
  auto wali = RunUnderWali(*w, 5);
  ASSERT_TRUE(wali.result.ok());
  int64_t native = w->native(5);
  EXPECT_EQ(wali.result.values[0].i32(), static_cast<uint32_t>(native));
}

TEST(Workloads, SqliteDifferentialWaliVsNative) {
  const workloads::Workload* w = FindWorkload("sqlite3");
  auto wali = RunUnderWali(*w, 8);
  ASSERT_TRUE(wali.result.ok());
  int64_t native = w->native(8);
  EXPECT_EQ(wali.result.values[0].i32(), static_cast<uint32_t>(native));
}

TEST(Workloads, LuaDifferentialWaliVsMiniRv) {
  // MiniRV exits with acc&127; compare against the WALI checksum.
  const workloads::Workload* w = FindWorkload("lua");
  auto wali = RunUnderWali(*w, 2);
  ASSERT_TRUE(wali.result.ok());
  auto prog = virt::AssembleRv(workloads::InstantiateWat(
      {.name = "", .wat = w->minirv_asm}, 2));
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  virt::MiniRvMachine::Options opts;
  virt::MiniRvMachine machine(opts);
  ASSERT_TRUE(machine.Load(*prog).ok());
  auto r = machine.Run();
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(r.exit_code, wali.result.values[0].i32() & 127);
}

TEST(Workloads, SyscallMixMatchesAppProfile) {
  // Fig. 2's premise: each app has a distinctive syscall mix.
  auto bash = RunUnderWali(*FindWorkload("bash"), 4);
  ASSERT_TRUE(bash.result.ok());
  EXPECT_GE(bash.syscall_counts["pipe2"], 4u);
  EXPECT_GE(bash.syscall_counts["getpid"], 4u);
  EXPECT_GE(bash.syscall_counts["stat"], 4u);

  auto sqlite = RunUnderWali(*FindWorkload("sqlite3"), 8);
  ASSERT_TRUE(sqlite.result.ok());
  EXPECT_GE(sqlite.syscall_counts["pwrite64"], 8u);
  EXPECT_GE(sqlite.syscall_counts["fsync"], 1u);
  EXPECT_GE(sqlite.syscall_counts["mremap"], 1u);

  auto lua = RunUnderWali(*FindWorkload("lua"), 4);
  ASSERT_TRUE(lua.result.ok());
  EXPECT_GE(lua.syscall_counts["mmap"], 4u);
  // lua is compute-bound: far fewer syscalls than bash per unit scale.
  EXPECT_LT(lua.total_syscalls, bash.total_syscalls * 3);

  auto memcached = RunUnderWali(*FindWorkload("memcached"), 16);
  ASSERT_TRUE(memcached.result.ok());
  EXPECT_GE(memcached.syscall_counts["clone"], 1u);
  EXPECT_GE(memcached.syscall_counts["socketpair"], 1u);
  EXPECT_GE(memcached.syscall_counts["read"], 16u);
}

TEST(Workloads, MemcachedServesCorrectValues) {
  // 3 sets then a get per 4 ops; replies accumulate deterministically.
  auto r1 = RunUnderWali(*FindWorkload("memcached"), 64);
  auto r2 = RunUnderWali(*FindWorkload("memcached"), 64);
  ASSERT_TRUE(r1.result.ok()) << r1.result.trap_message;
  ASSERT_TRUE(r2.result.ok());
  EXPECT_EQ(r1.result.values[0].i32(), r2.result.values[0].i32());
}

TEST(Workloads, ScalingIsMonotonic) {
  const workloads::Workload* w = FindWorkload("paho-bench");
  auto small = RunUnderWali(*w, 10);
  auto large = RunUnderWali(*w, 100);
  ASSERT_TRUE(small.result.ok());
  ASSERT_TRUE(large.result.ok());
  EXPECT_GT(large.total_syscalls, small.total_syscalls);
}

}  // namespace
