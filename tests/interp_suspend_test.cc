// Syscall-boundary suspension semantics (async offload tentpole): a host
// call may park the invocation (TrapKind::kSyscallPending) instead of
// completing synchronously, and ResumeInvoke must continue it so that the
// finished run is BIT-IDENTICAL to a run whose host calls completed inline
// — same result values, same executed_instrs (and therefore fuel/ledger
// math), same traps at the same points — across both dispatch modes and
// safepoint schemes. This is the interpreter-level contract the WALI park
// path and the host supervisor build on (tests/host_io_test.cc covers the
// full stack).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/wasm/wasm.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::DispatchMode;
using wasm::ExecOptions;
using wasm::RunResult;
using wasm::SafepointScheme;
using wasm::TrapKind;
using wasm::Value;

// The scripted "syscall": a pure function of its argument so the blocking
// and suspending hosts can't drift.
int64_t ScriptedResult(int64_t arg) { return arg * 2 + 1; }

// Loop + nested call + memory traffic around every host call, so resuming
// exercises branch targets, frame re-entry, and the threaded loop's cached
// memory state.
const char* kGuest = R"((module
  (import "env" "blocking" (func $b (param i64) (result i64)))
  (export "blocking" (func $b))
  (memory 1)
  (func $work (param $n i32) (result i64)
    (local $i i32) (local $acc i64)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $acc (i64.add (local.get $acc)
            (call $b (i64.extend_i32_u (local.get $i)))))
        (i64.store (i32.const 64) (local.get $acc))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $acc))
  (func (export "main") (param i32) (result i64)
    (call $work (local.get 0)))
))";

struct SuspendWorld {
  wasm_test::WatFixture fx;
  std::vector<int64_t> parked_args;  // args seen by the suspending host
};

// Instantiates kGuest with a host that ALWAYS parks: it records the arg and
// unwinds with kSyscallPending, exactly like the WALI dispatch wrapper.
SuspendWorld MakeSuspending() {
  SuspendWorld w;
  auto* parked = &w.parked_args;
  w.fx = wasm_test::Instantiate(kGuest, [parked](wasm::Linker& linker) {
    wasm::FuncType type;
    type.params = {wasm::ValType::kI64};
    type.results = {wasm::ValType::kI64};
    linker.DefineHostFunc(
        "env", "blocking", type,
        [parked](wasm::ExecContext& ctx, const uint64_t* args, uint64_t*) {
          parked->push_back(static_cast<int64_t>(args[0]));
          ctx.SetTrap(TrapKind::kSyscallPending, "parked");
          return ctx.trap;
        });
  });
  return w;
}

wasm_test::WatFixture MakeBlocking() {
  return wasm_test::Instantiate(kGuest, [](wasm::Linker& linker) {
    wasm::FuncType type;
    type.params = {wasm::ValType::kI64};
    type.results = {wasm::ValType::kI64};
    linker.DefineHostFunc(
        "env", "blocking", type,
        [](wasm::ExecContext&, const uint64_t* args, uint64_t* results) {
          results[0] = static_cast<uint64_t>(
              ScriptedResult(static_cast<int64_t>(args[0])));
          return TrapKind::kNone;
        });
  });
}

// Drives a suspending run to completion: every park is answered with the
// scripted result, like the supervisor materializing completions.
RunResult RunSuspendedToEnd(SuspendWorld& w, const std::string& func,
                            const std::vector<Value>& args, ExecOptions opts,
                            int* park_count = nullptr) {
  wasm::Suspension susp;
  opts.suspend_to = &susp;
  RunResult r = w.fx.instance->CallExport(func, args, opts);
  int parks = 0;
  while (r.trap == TrapKind::kSyscallPending) {
    EXPECT_TRUE(susp.armed());
    EXPECT_EQ(susp.pending_results, 1u);
    ++parks;
    uint64_t bits = static_cast<uint64_t>(ScriptedResult(w.parked_args.back()));
    r = wasm::ResumeInvoke(susp, &bits, 1);
  }
  EXPECT_FALSE(susp.armed());
  if (park_count != nullptr) {
    *park_count = parks;
  }
  return r;
}

struct ModeCase {
  DispatchMode dispatch;
  SafepointScheme scheme;
};

std::vector<ModeCase> AllModes() {
  return {
      {DispatchMode::kSwitch, SafepointScheme::kLoop},
      {DispatchMode::kThreaded, SafepointScheme::kLoop},
      {DispatchMode::kSwitch, SafepointScheme::kEveryInstr},
      {DispatchMode::kThreaded, SafepointScheme::kFunction},
  };
}

TEST(InterpSuspend, ResumedRunBitIdenticalToBlockingRun) {
  for (const ModeCase& mode : AllModes()) {
    SCOPED_TRACE(std::string("dispatch=") + wasm::DispatchModeName(mode.dispatch) +
                 " scheme=" + wasm::SafepointSchemeName(mode.scheme));
    ExecOptions opts;
    opts.dispatch = mode.dispatch;
    opts.scheme = mode.scheme;

    wasm_test::WatFixture blocking = MakeBlocking();
    ASSERT_NE(blocking.instance, nullptr);
    RunResult want =
        blocking.instance->CallExport("main", {Value::I32(7)}, opts);
    ASSERT_EQ(want.trap, TrapKind::kNone) << want.trap_message;

    SuspendWorld w = MakeSuspending();
    ASSERT_NE(w.fx.instance, nullptr);
    int parks = 0;
    RunResult got =
        RunSuspendedToEnd(w, "main", {Value::I32(7)}, opts, &parks);

    EXPECT_EQ(parks, 7);
    ASSERT_EQ(got.trap, TrapKind::kNone) << got.trap_message;
    ASSERT_EQ(got.values.size(), want.values.size());
    EXPECT_EQ(got.values[0].bits, want.values[0].bits);
    EXPECT_EQ(got.executed_instrs, want.executed_instrs)
        << "suspension must not perturb instruction accounting";
  }
}

TEST(InterpSuspend, FuelAccountingIdenticalAcrossSuspension) {
  // Sweep fuel through the whole run's cost: at every limit, the suspended
  // run must trap (or complete) exactly where the blocking run does, with
  // the same executed count — this is what makes TenantLedger math
  // independent of whether a run parked.
  ExecOptions probe;
  wasm_test::WatFixture blocking = MakeBlocking();
  ASSERT_NE(blocking.instance, nullptr);
  RunResult full = blocking.instance->CallExport("main", {Value::I32(5)}, probe);
  ASSERT_EQ(full.trap, TrapKind::kNone);
  const uint64_t total = full.executed_instrs;
  ASSERT_GT(total, 10u);

  for (const ModeCase& mode : AllModes()) {
    for (uint64_t fuel = 1; fuel <= total + 1; ++fuel) {
      ExecOptions opts;
      opts.dispatch = mode.dispatch;
      opts.scheme = mode.scheme;
      opts.fuel = fuel;

      wasm_test::WatFixture b = MakeBlocking();
      RunResult want = b.instance->CallExport("main", {Value::I32(5)}, opts);

      SuspendWorld w = MakeSuspending();
      RunResult got = RunSuspendedToEnd(w, "main", {Value::I32(5)}, opts);

      ASSERT_EQ(got.trap, want.trap)
          << "fuel=" << fuel << " dispatch=" << static_cast<int>(mode.dispatch)
          << " scheme=" << static_cast<int>(mode.scheme);
      ASSERT_EQ(got.executed_instrs, want.executed_instrs) << "fuel=" << fuel;
      if (want.trap == TrapKind::kNone) {
        ASSERT_EQ(got.values[0].bits, want.values[0].bits) << "fuel=" << fuel;
      }
    }
  }
}

TEST(InterpSuspend, TopLevelHostCallSuspends) {
  // The suspended call IS the entry invocation (re-exported import): resume
  // materializes the run's result directly through the empty-frame path.
  SuspendWorld w = MakeSuspending();
  ASSERT_NE(w.fx.instance, nullptr);
  wasm::Suspension susp;
  ExecOptions opts;
  opts.suspend_to = &susp;
  RunResult r = w.fx.instance->CallExport("blocking", {Value::I64(21)}, opts);
  ASSERT_EQ(r.trap, TrapKind::kSyscallPending);
  ASSERT_TRUE(susp.armed());
  uint64_t bits = 43;
  r = wasm::ResumeInvoke(susp, &bits, 1);
  ASSERT_EQ(r.trap, TrapKind::kNone) << r.trap_message;
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0].i64(), 43u);
  EXPECT_FALSE(susp.armed());
}

TEST(InterpSuspend, SuspensionUnavailableIsHostError) {
  // A host that parks without a suspension slot must fail loudly, not lose
  // the call (guards against handlers bypassing WaliCtx::CanOffload).
  SuspendWorld w = MakeSuspending();
  ASSERT_NE(w.fx.instance, nullptr);
  RunResult r = w.fx.instance->CallExport("main", {Value::I32(1)}, ExecOptions{});
  EXPECT_EQ(r.trap, TrapKind::kHostError);
}

TEST(InterpSuspend, RecycledBuffersSurviveSuspension) {
  // A suspended run borrows ExecBuffers across the park; they must come
  // back (with their grown capacity) at finish, and be reusable.
  wasm::ExecBuffers buffers;
  for (int round = 0; round < 3; ++round) {
    SuspendWorld w = MakeSuspending();
    ASSERT_NE(w.fx.instance, nullptr);
    ExecOptions opts;
    opts.buffers = &buffers;
    RunResult r = RunSuspendedToEnd(w, "main", {Value::I32(4)}, opts);
    ASSERT_EQ(r.trap, TrapKind::kNone) << r.trap_message;
    EXPECT_GT(buffers.stack.capacity(), 0u)
        << "buffers must be handed back after a suspended run";
  }
}

TEST(InterpSuspend, DiscardAbandonsParkedRun) {
  // Shedding a parked guest: the suspension is dropped mid-run. No resume,
  // no result — and no leak (the ASan job runs this test).
  wasm::ExecBuffers buffers;
  SuspendWorld w = MakeSuspending();
  ASSERT_NE(w.fx.instance, nullptr);
  wasm::Suspension susp;
  ExecOptions opts;
  opts.suspend_to = &susp;
  opts.buffers = &buffers;
  RunResult r = w.fx.instance->CallExport("main", {Value::I32(8)}, opts);
  ASSERT_EQ(r.trap, TrapKind::kSyscallPending);
  ASSERT_TRUE(susp.armed());
  susp.Discard();
  EXPECT_FALSE(susp.armed());
  // The buffers were handed back on discard and are reusable immediately.
  RunResult again = RunSuspendedToEnd(w, "main", {Value::I32(2)}, opts);
  EXPECT_EQ(again.trap, TrapKind::kNone) << again.trap_message;
}

TEST(InterpSuspend, ResumeArityMismatchFailsSafely) {
  SuspendWorld w = MakeSuspending();
  ASSERT_NE(w.fx.instance, nullptr);
  wasm::Suspension susp;
  ExecOptions opts;
  opts.suspend_to = &susp;
  RunResult r = w.fx.instance->CallExport("main", {Value::I32(1)}, opts);
  ASSERT_EQ(r.trap, TrapKind::kSyscallPending);
  uint64_t bits[2] = {1, 2};
  r = wasm::ResumeInvoke(susp, bits, 2);
  EXPECT_EQ(r.trap, TrapKind::kHostError);
  EXPECT_FALSE(susp.armed());
  // Resuming an unarmed suspension is also an error, not a crash.
  uint64_t one = 1;
  r = wasm::ResumeInvoke(susp, &one, 1);
  EXPECT_EQ(r.trap, TrapKind::kHostError);
}

}  // namespace
