// Linear memory: loads/stores of all widths, bounds checks including
// offset-overflow cases, grow semantics, data segments, memory.copy/fill,
// and the Memory mmap hooks WALI relies on.
#include <gtest/gtest.h>

#include <cstring>

#include "tests/wat_test_util.h"

namespace {

using wasm::Limits;
using wasm::Memory;
using wasm::TrapKind;
using wasm::Value;
using wasm_test::ExpectI32;
using wasm_test::ExpectI64;
using wasm_test::ExpectTrap;
using wasm_test::RunWat;

const char* kMemWat = R"((module
  (memory 1 4)
  (data (i32.const 16) "\01\02\03\04\05\06\07\08")
  (func (export "load8_u") (param i32) (result i32) (i32.load8_u (local.get 0)))
  (func (export "load8_s") (param i32) (result i32) (i32.load8_s (local.get 0)))
  (func (export "load16_u") (param i32) (result i32) (i32.load16_u (local.get 0)))
  (func (export "load32") (param i32) (result i32) (i32.load (local.get 0)))
  (func (export "load64") (param i32) (result i64) (i64.load (local.get 0)))
  (func (export "load32_off") (param i32) (result i32) (i32.load offset=12 (local.get 0)))
  (func (export "store32") (param i32 i32) (i32.store (local.get 0) (local.get 1)))
  (func (export "store8") (param i32 i32) (i32.store8 (local.get 0) (local.get 1)))
  (func (export "store64") (param i32 i64) (i64.store (local.get 0) (local.get 1)))
  (func (export "size") (result i32) memory.size)
  (func (export "grow") (param i32) (result i32) (memory.grow (local.get 0)))
  (func (export "fill") (param i32 i32 i32)
    (memory.fill (local.get 0) (local.get 1) (local.get 2)))
  (func (export "copy") (param i32 i32 i32)
    (memory.copy (local.get 0) (local.get 1) (local.get 2)))
))";

TEST(Memory, DataSegmentAndLoads) {
  ExpectI32(kMemWat, "load8_u", {Value::I32(16)}, 1);
  ExpectI32(kMemWat, "load8_u", {Value::I32(23)}, 8);
  ExpectI32(kMemWat, "load16_u", {Value::I32(16)}, 0x0201);
  ExpectI32(kMemWat, "load32", {Value::I32(16)}, 0x04030201);
  ExpectI64(kMemWat, "load64", {Value::I32(16)}, 0x0807060504030201ull);
  ExpectI32(kMemWat, "load32_off", {Value::I32(4)}, 0x04030201);
  // Untouched memory reads as zero.
  ExpectI32(kMemWat, "load32", {Value::I32(1000)}, 0);
}

TEST(Memory, SignExtension) {
  wasm_test::WatFixture fx = wasm_test::Instantiate(kMemWat);
  ASSERT_NE(fx.instance, nullptr);
  fx.instance->CallExport("store8", {Value::I32(100), Value::I32(0xFF)});
  auto r = fx.instance->CallExport("load8_s", {Value::I32(100)});
  EXPECT_EQ(r.values[0].i32(), 0xFFFFFFFFu);
  auto r2 = fx.instance->CallExport("load8_u", {Value::I32(100)});
  EXPECT_EQ(r2.values[0].i32(), 0xFFu);
}

TEST(Memory, StoreLoadRoundtrip64) {
  wasm_test::WatFixture fx = wasm_test::Instantiate(kMemWat);
  ASSERT_NE(fx.instance, nullptr);
  fx.instance->CallExport("store64", {Value::I32(512), Value::I64(0xDEADBEEFCAFEF00Dull)});
  auto r = fx.instance->CallExport("load64", {Value::I32(512)});
  EXPECT_EQ(r.values[0].i64(), 0xDEADBEEFCAFEF00Dull);
}

TEST(Memory, OutOfBoundsTraps) {
  // One page = 65536 bytes.
  ExpectTrap(kMemWat, "load32", {Value::I32(65533)}, TrapKind::kMemOutOfBounds);
  ExpectI32(kMemWat, "load32", {Value::I32(65532)}, 0);
  ExpectTrap(kMemWat, "load8_u", {Value::I32(65536)}, TrapKind::kMemOutOfBounds);
  ExpectTrap(kMemWat, "store32", {Value::I32(65533), Value::I32(1)},
             TrapKind::kMemOutOfBounds);
  // Offset + addr overflow must not wrap around.
  ExpectTrap(kMemWat, "load32_off", {Value::I32(0xFFFFFFFF)}, TrapKind::kMemOutOfBounds);
}

TEST(Memory, GrowSemantics) {
  wasm_test::WatFixture fx = wasm_test::Instantiate(kMemWat);
  ASSERT_NE(fx.instance, nullptr);
  EXPECT_EQ(fx.instance->CallExport("size", {}).values[0].i32(), 1u);
  EXPECT_EQ(fx.instance->CallExport("grow", {Value::I32(2)}).values[0].i32(), 1u);
  EXPECT_EQ(fx.instance->CallExport("size", {}).values[0].i32(), 3u);
  // Growing past max (4) fails with -1.
  EXPECT_EQ(fx.instance->CallExport("grow", {Value::I32(5)}).values[0].i32(),
            0xFFFFFFFFu);
  EXPECT_EQ(fx.instance->CallExport("grow", {Value::I32(1)}).values[0].i32(), 3u);
  // Newly grown pages are zeroed and accessible.
  auto r = fx.instance->CallExport("load32", {Value::I32(3 * 65536)});
  EXPECT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.values[0].i32(), 0u);
}

TEST(Memory, FillAndCopy) {
  wasm_test::WatFixture fx = wasm_test::Instantiate(kMemWat);
  ASSERT_NE(fx.instance, nullptr);
  fx.instance->CallExport("fill", {Value::I32(200), Value::I32(0xAB), Value::I32(8)});
  EXPECT_EQ(fx.instance->CallExport("load32", {Value::I32(200)}).values[0].i32(),
            0xABABABABu);
  fx.instance->CallExport("copy", {Value::I32(300), Value::I32(16), Value::I32(8)});
  EXPECT_EQ(fx.instance->CallExport("load64", {Value::I32(300)}).values[0].i64(),
            0x0807060504030201ull);
  // Overlapping copy behaves like memmove.
  fx.instance->CallExport("copy", {Value::I32(17), Value::I32(16), Value::I32(7)});
  EXPECT_EQ(fx.instance->CallExport("load8_u", {Value::I32(18)}).values[0].i32(), 2u);
  // OOB copy traps.
  auto r = fx.instance->CallExport("copy",
                                   {Value::I32(65530), Value::I32(0), Value::I32(100)});
  EXPECT_EQ(r.trap, TrapKind::kMemOutOfBounds);
}

TEST(MemoryObject, CreateRespectsLimits) {
  Limits l;
  l.min = 2;
  l.max = 8;
  l.has_max = true;
  auto mem = Memory::Create(l);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ((*mem)->size_pages(), 2u);
  EXPECT_EQ((*mem)->max_pages(), 8u);
  EXPECT_EQ((*mem)->Grow(6), 2);
  EXPECT_EQ((*mem)->Grow(1), -1);
  // Base never moves across grows (WALI zero-copy requirement).
  Limits l2;
  l2.min = 1;
  auto m2 = Memory::Create(l2);
  ASSERT_TRUE(m2.ok());
  uint8_t* base = (*m2)->base();
  (*m2)->Grow(10);
  EXPECT_EQ((*m2)->base(), base);
}

TEST(MemoryObject, InBoundsEdgeCases) {
  Limits l;
  l.min = 1;
  l.max = 1;
  l.has_max = true;
  auto mem = Memory::Create(l);
  ASSERT_TRUE(mem.ok());
  EXPECT_TRUE((*mem)->InBounds(0, 65536));
  EXPECT_FALSE((*mem)->InBounds(0, 65537));
  EXPECT_TRUE((*mem)->InBounds(65536, 0));
  EXPECT_FALSE((*mem)->InBounds(65537, 0));
  EXPECT_FALSE((*mem)->InBounds(UINT64_MAX, 1));
}

TEST(MemoryObject, UnmapFixedZeroes) {
  Limits l;
  l.min = 2;
  auto memOr = Memory::Create(l);
  ASSERT_TRUE(memOr.ok());
  auto mem = *memOr;
  std::memset(mem->At(65536), 0x5A, 4096);
  EXPECT_EQ(mem->UnmapFixed(65536, 4096), 0);
  EXPECT_EQ(mem->At(65536)[0], 0);
  EXPECT_EQ(mem->At(65536)[4095], 0);
}

TEST(MemoryObject, WaitNotEqualReturnsImmediately) {
  Limits l;
  l.min = 1;
  auto mem = Memory::Create(l);
  ASSERT_TRUE(mem.ok());
  *reinterpret_cast<uint32_t*>((*mem)->At(64)) = 7;
  EXPECT_EQ((*mem)->Wait32(64, 8, -1), 1);          // value != expected
  EXPECT_EQ((*mem)->Wait32(64, 7, 1000000), 2);     // times out (1ms)
  EXPECT_EQ((*mem)->Notify(64, 1), 0u);             // nobody waiting
}

// Parameterized sweep over page counts: grow-to-cover math.
class GrowToCover : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GrowToCover, CoversRequestedEnd) {
  Limits l;
  l.min = 1;
  l.max = 64;
  l.has_max = true;
  auto mem = Memory::Create(l);
  ASSERT_TRUE(mem.ok());
  uint64_t end = GetParam();
  ASSERT_TRUE((*mem)->GrowToCover(end));
  EXPECT_GE((*mem)->size_bytes(), end);
  EXPECT_EQ((*mem)->size_bytes() % wasm::kWasmPageSize, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GrowToCover,
                         ::testing::Values(1, 65536, 65537, 131072, 200000,
                                           1048576, 64 * 65536));

}  // namespace
