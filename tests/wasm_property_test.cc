// Property-based differential testing: randomly generated expression
// programs are evaluated by a host oracle and by the engine; results must
// agree bit-for-bit. Covers i32/i64 arithmetic, logic, shifts, comparisons
// and conversions across hundreds of seeds, plus randomized memory
// bounds-check consistency.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "tests/wat_test_util.h"

namespace {

using common::SplitMix64;

// Expression tree over two i64 inputs (locals 0 and 1); every operator is
// total (no division/trunc traps) so the oracle never faults.
struct Expr {
  enum class Kind {
    kConst, kVar0, kVar1,
    kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShrU, kShrS, kRotl,
    kEqz, kClz, kCtz, kPopcnt, kExtend8, kWrapExtendU, kWrapExtendS,
  };
  Kind kind;
  uint64_t value = 0;
  std::unique_ptr<Expr> lhs, rhs;
};

std::unique_ptr<Expr> GenExpr(SplitMix64& rng, int depth) {
  auto e = std::make_unique<Expr>();
  // Force a leaf at the depth limit; otherwise leaves are ~25% likely.
  if (depth <= 0 || rng.NextBelow(4) == 0) {
    switch (rng.NextBelow(3)) {
      case 0:
        e->kind = Expr::Kind::kConst;
        e->value = rng.Next();
        return e;
      case 1: e->kind = Expr::Kind::kVar0; return e;
      default: e->kind = Expr::Kind::kVar1; return e;
    }
  }
  static const Expr::Kind kBinops[] = {
      Expr::Kind::kAdd, Expr::Kind::kSub, Expr::Kind::kMul, Expr::Kind::kAnd,
      Expr::Kind::kOr, Expr::Kind::kXor, Expr::Kind::kShl, Expr::Kind::kShrU,
      Expr::Kind::kShrS, Expr::Kind::kRotl,
  };
  static const Expr::Kind kUnops[] = {
      Expr::Kind::kEqz, Expr::Kind::kClz, Expr::Kind::kCtz, Expr::Kind::kPopcnt,
      Expr::Kind::kExtend8, Expr::Kind::kWrapExtendU, Expr::Kind::kWrapExtendS,
  };
  if (rng.NextBelow(10) < 7) {
    e->kind = kBinops[rng.NextBelow(std::size(kBinops))];
    e->lhs = GenExpr(rng, depth - 1);
    e->rhs = GenExpr(rng, depth - 1);
  } else {
    e->kind = kUnops[rng.NextBelow(std::size(kUnops))];
    e->lhs = GenExpr(rng, depth - 1);
  }
  return e;
}

uint64_t Eval(const Expr& e, uint64_t v0, uint64_t v1) {
  switch (e.kind) {
    case Expr::Kind::kConst: return e.value;
    case Expr::Kind::kVar0: return v0;
    case Expr::Kind::kVar1: return v1;
    default: break;
  }
  uint64_t a = Eval(*e.lhs, v0, v1);
  uint64_t b = e.rhs != nullptr ? Eval(*e.rhs, v0, v1) : 0;
  switch (e.kind) {
    case Expr::Kind::kAdd: return a + b;
    case Expr::Kind::kSub: return a - b;
    case Expr::Kind::kMul: return a * b;
    case Expr::Kind::kAnd: return a & b;
    case Expr::Kind::kOr: return a | b;
    case Expr::Kind::kXor: return a ^ b;
    case Expr::Kind::kShl: return a << (b & 63);
    case Expr::Kind::kShrU: return a >> (b & 63);
    case Expr::Kind::kShrS:
      return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
    case Expr::Kind::kRotl: {
      unsigned s = b & 63;
      return s == 0 ? a : (a << s) | (a >> (64 - s));
    }
    case Expr::Kind::kEqz: return a == 0 ? 1 : 0;
    case Expr::Kind::kClz: return a == 0 ? 64 : __builtin_clzll(a);
    case Expr::Kind::kCtz: return a == 0 ? 64 : __builtin_ctzll(a);
    case Expr::Kind::kPopcnt: return __builtin_popcountll(a);
    case Expr::Kind::kExtend8:
      return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(a)));
    case Expr::Kind::kWrapExtendU: return static_cast<uint32_t>(a);
    case Expr::Kind::kWrapExtendS:
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(static_cast<uint32_t>(a))));
    default: return 0;
  }
}

void Emit(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kConst:
      *out += "(i64.const " + std::to_string(static_cast<int64_t>(e.value)) + ")";
      return;
    case Expr::Kind::kVar0: *out += "(local.get 0)"; return;
    case Expr::Kind::kVar1: *out += "(local.get 1)"; return;
    default: break;
  }
  const char* op = nullptr;
  bool wrap_pair = false;
  switch (e.kind) {
    case Expr::Kind::kAdd: op = "i64.add"; break;
    case Expr::Kind::kSub: op = "i64.sub"; break;
    case Expr::Kind::kMul: op = "i64.mul"; break;
    case Expr::Kind::kAnd: op = "i64.and"; break;
    case Expr::Kind::kOr: op = "i64.or"; break;
    case Expr::Kind::kXor: op = "i64.xor"; break;
    case Expr::Kind::kShl: op = "i64.shl"; break;
    case Expr::Kind::kShrU: op = "i64.shr_u"; break;
    case Expr::Kind::kShrS: op = "i64.shr_s"; break;
    case Expr::Kind::kRotl: op = "i64.rotl"; break;
    case Expr::Kind::kClz: op = "i64.clz"; break;
    case Expr::Kind::kCtz: op = "i64.ctz"; break;
    case Expr::Kind::kPopcnt: op = "i64.popcnt"; break;
    case Expr::Kind::kExtend8: op = "i64.extend8_s"; break;
    case Expr::Kind::kEqz:
      // i64.eqz yields i32; re-extend to keep the tree type-uniform.
      *out += "(i64.extend_i32_u (i64.eqz ";
      Emit(*e.lhs, out);
      *out += "))";
      return;
    case Expr::Kind::kWrapExtendU:
      *out += "(i64.extend_i32_u (i32.wrap_i64 ";
      Emit(*e.lhs, out);
      *out += "))";
      return;
    case Expr::Kind::kWrapExtendS:
      *out += "(i64.extend_i32_s (i32.wrap_i64 ";
      Emit(*e.lhs, out);
      *out += "))";
      return;
    default: break;
  }
  (void)wrap_pair;
  *out += "(";
  *out += op;
  *out += " ";
  Emit(*e.lhs, out);
  if (e.rhs != nullptr) {
    *out += " ";
    Emit(*e.rhs, out);
  }
  *out += ")";
}

class DifferentialExpr : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialExpr, EngineMatchesOracle) {
  SplitMix64 rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (int program = 0; program < 8; ++program) {
    auto expr = GenExpr(rng, 5);
    std::string body;
    Emit(*expr, &body);
    std::string wat =
        "(module (func (export \"main\") (param i64 i64) (result i64) " + body + "))";
    auto parsed = wasm::ParseAndValidateWat(wat);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << wat;
    wasm::Linker linker;
    auto inst = linker.Instantiate(*parsed);
    ASSERT_TRUE(inst.ok());
    for (int trial = 0; trial < 4; ++trial) {
      uint64_t v0 = rng.Next();
      uint64_t v1 = rng.Next();
      uint64_t want = Eval(*expr, v0, v1);
      auto r = (*inst)->CallExport("main", {wasm::Value::I64(v0), wasm::Value::I64(v1)});
      ASSERT_EQ(r.trap, wasm::TrapKind::kNone) << wat;
      ASSERT_EQ(r.values[0].i64(), want)
          << "seed=" << GetParam() << " program=" << program << "\n" << wat;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialExpr, ::testing::Range<uint64_t>(1, 33));

// Randomized bounds-check consistency: loads at random addresses either
// succeed (in bounds) or trap with kMemOutOfBounds (never anything else).
class MemoryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemoryFuzz, LoadsEitherSucceedOrTrapCleanly) {
  const char* wat = R"((module
    (memory 2 4)
    (func (export "ld") (param i32) (result i64) (i64.load (local.get 0)))
    (func (export "ld8") (param i32) (result i32) (i32.load8_u (local.get 0)))
    (func (export "grow") (param i32) (result i32) (memory.grow (local.get 0)))
  ))";
  wasm_test::WatFixture fx = wasm_test::Instantiate(wat);
  ASSERT_NE(fx.instance, nullptr);
  SplitMix64 rng(GetParam());
  uint64_t size = 2 * 65536;
  for (int i = 0; i < 200; ++i) {
    if (rng.NextBelow(50) == 0 && size < 4 * 65536) {
      auto g = fx.instance->CallExport("grow", {wasm::Value::I32(1)});
      if (static_cast<int32_t>(g.values[0].i32()) >= 0) {
        size += 65536;
      }
    }
    uint32_t addr = rng.NextBelow(5 * 65536);
    auto r = fx.instance->CallExport("ld", {wasm::Value::I32(addr)});
    bool in_bounds = static_cast<uint64_t>(addr) + 8 <= size;
    if (in_bounds) {
      EXPECT_EQ(r.trap, wasm::TrapKind::kNone) << addr;
    } else {
      EXPECT_EQ(r.trap, wasm::TrapKind::kMemOutOfBounds) << addr << " size=" << size;
    }
    auto r8 = fx.instance->CallExport("ld8", {wasm::Value::I32(addr)});
    EXPECT_EQ(r8.trap, addr < size ? wasm::TrapKind::kNone
                                   : wasm::TrapKind::kMemOutOfBounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz, ::testing::Range<uint64_t>(100, 110));

// WAT parser fuzz-ish negative tests: malformed inputs must error, not crash.
TEST(WatParserErrors, MalformedInputsFailCleanly) {
  const char* cases[] = {
      "(",
      ")",
      "(module (func (export \"m\") (result i32)))",  // missing body value
      "(module (func unknown.op))",
      "(module (memory -1))",
      "(module (func (param $x) ))",
      "(module (data (i32.const 0) notastring))",
      "(module (func (result i32) (i32.const )))",
      "(module (export \"e\" (func $nope)))",
      "(module (func br_table))",
      "(module \"stray\")",
      "(module (import \"a\" \"b\" (func)) (import \"c\" \"d\" (memory 1)) (func) (import \"e\" \"f\" (func)))",
  };
  for (const char* bad : cases) {
    auto r = wasm::ParseAndValidateWat(bad);
    EXPECT_FALSE(r.ok()) << bad;
  }
}

}  // namespace
