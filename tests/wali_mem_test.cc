// WALI memory-management syscalls: anonymous and file-backed mmap inside the
// sandbox, zero-copy file maps, munmap-to-zeros, mremap, brk, and the PROT
// restrictions of §3.6.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "tests/wali_test_util.h"

namespace {

using wali_test::ExpectWaliMain;
using wali_test::RunWali;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/wali_mem_" + std::to_string(getpid()) + "_" + name;
}

TEST(WaliMem, AnonymousMmapReadWrite) {
  // mmap(0, 8192, RW, ANON|PRIVATE) then store/load through the mapping.
  std::string body = R"(
    (memory 2 256)
    (func (export "main") (result i32)
      (local $p i64)
      (local.set $p (call $mmap (i64.const 0) (i64.const 8192) (i64.const 3)
                          (i64.const 0x22) (i64.const -1) (i64.const 0)))
      (if (i64.lt_s (local.get $p) (i64.const 0)) (then (return (i32.const 1))))
      (i32.store (i32.wrap_i64 (local.get $p)) (i32.const 0x12345678))
      (if (i32.ne (i32.load (i32.wrap_i64 (local.get $p))) (i32.const 0x12345678))
        (then (return (i32.const 2))))
      ;; fresh anonymous maps are zero-filled beyond what we wrote
      (if (i32.ne (i32.load offset=4096 (i32.wrap_i64 (local.get $p))) (i32.const 0))
        (then (return (i32.const 3))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliMem, FileBackedMmapZeroCopy) {
  std::string path = TempPath("mapfile");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // One page of 'A' then "WALI".
  for (int i = 0; i < 4096; ++i) fputc('A', f);
  fputs("WALI", f);
  fclose(f);
  std::string body = R"(
    (memory 2 256)
    (data (i32.const 64) ")" + path + R"(\00")" + R"()
    (func (export "main") (result i32)
      (local $fd i64) (local $p i64)
      (local.set $fd (call $open (i64.const 64) (i64.const 0) (i64.const 0)))
      (if (i64.lt_s (local.get $fd) (i64.const 0)) (then (return (i32.const 1))))
      ;; map the second page: mmap(0, 4096, READ, PRIVATE, fd, 4096)
      (local.set $p (call $mmap (i64.const 0) (i64.const 4096) (i64.const 1)
                          (i64.const 0x2) (local.get $fd) (i64.const 4096)))
      (if (i64.lt_s (local.get $p) (i64.const 0)) (then (return (i32.const 2))))
      ;; "WALI" little-endian = 0x494C4157
      (if (i32.ne (i32.load (i32.wrap_i64 (local.get $p))) (i32.const 0x494C4157))
        (then (return (i32.const 3))))
      (drop (call $close (local.get $fd)))
      (if (i64.ne (call $munmap (local.get $p) (i64.const 4096)) (i64.const 0))
        (then (return (i32.const 4))))
      ;; after munmap the sandbox page reads as zeros, never faults
      (if (i32.ne (i32.load (i32.wrap_i64 (local.get $p))) (i32.const 0))
        (then (return (i32.const 5))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
  unlink(path.c_str());
}

TEST(WaliMem, MmapRejectsExec) {
  // PROT_EXEC mappings are impossible by construction (§3.6).
  std::string body = R"(
    (memory 2 64)
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
          (call $mmap (i64.const 0) (i64.const 4096) (i64.const 7)
                (i64.const 0x22) (i64.const -1) (i64.const 0)))))
  )";
  ExpectWaliMain(body, EPERM);
}

TEST(WaliMem, MremapGrows) {
  std::string body = R"(
    (memory 2 256)
    (func (export "main") (result i32)
      (local $p i64) (local $q i64)
      (local.set $p (call $mmap (i64.const 0) (i64.const 4096) (i64.const 3)
                          (i64.const 0x22) (i64.const -1) (i64.const 0)))
      (if (i64.lt_s (local.get $p) (i64.const 0)) (then (return (i32.const 1))))
      (i32.store (i32.wrap_i64 (local.get $p)) (i32.const 777))
      ;; mremap(p, 4096, 65536, MREMAP_MAYMOVE)
      (local.set $q (call $mremap (local.get $p) (i64.const 4096) (i64.const 65536)
                          (i64.const 1) (i64.const 0)))
      (if (i64.lt_s (local.get $q) (i64.const 0)) (then (return (i32.const 2))))
      ;; contents preserved across the move/grow
      (if (i32.ne (i32.load (i32.wrap_i64 (local.get $q))) (i32.const 777))
        (then (return (i32.const 3))))
      ;; tail of the grown mapping is writable
      (i32.store offset=65000 (i32.wrap_i64 (local.get $q)) (i32.const 5))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliMem, BrkEmulation) {
  std::string body = R"(
    (memory 2 256)
    (func (export "main") (result i32)
      (local $cur i64) (local $next i64)
      (local.set $cur (call $brk (i64.const 0)))
      (if (i64.le_s (local.get $cur) (i64.const 0)) (then (return (i32.const 1))))
      (local.set $next (call $brk (i64.add (local.get $cur) (i64.const 65536))))
      (if (i64.ne (local.get $next) (i64.add (local.get $cur) (i64.const 65536)))
        (then (return (i32.const 2))))
      ;; heap memory is usable
      (i32.store (i32.wrap_i64 (local.get $cur)) (i32.const 99))
      (if (i32.ne (i32.load (i32.wrap_i64 (local.get $cur))) (i32.const 99))
        (then (return (i32.const 3))))
      ;; brk(0) now reports the new break
      (if (i64.ne (call $brk (i64.const 0)) (local.get $next))
        (then (return (i32.const 4))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliMem, MunmapBelowPoolRejected) {
  // Unmapping module data (below the allocation pool) must be refused.
  std::string body = R"(
    (memory 2 64)
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $munmap (i64.const 4096) (i64.const 4096)))))
  )";
  ExpectWaliMain(body, EINVAL);
}

TEST(WaliMem, PoolExhaustionReturnsEnomem) {
  // Max memory 4 pages = 256 KiB; asking for 1 MiB must fail cleanly.
  std::string body = R"(
    (memory 2 4)
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
          (call $mmap (i64.const 0) (i64.const 1048576) (i64.const 3)
                (i64.const 0x22) (i64.const -1) (i64.const 0)))))
  )";
  ExpectWaliMain(body, ENOMEM);
}

TEST(WaliMem, MmapManagerInvariants) {
  // Direct unit coverage of the pool allocator.
  wasm::Limits limits;
  limits.min = 2;
  limits.max = 64;
  limits.has_max = true;
  auto mem = wasm::Memory::Create(limits);
  ASSERT_TRUE(mem.ok());
  wali::MmapManager mgr;
  mgr.Bind(mem->get());
  uint64_t a = mgr.Allocate(10000, 0, false);
  ASSERT_NE(a, 0u);
  EXPECT_EQ(a % wali::kMmapPageSize, 0u);
  uint64_t b = mgr.Allocate(4096, 0, false);
  ASSERT_NE(b, 0u);
  EXPECT_TRUE(mgr.IsMapped(a, 10000));
  EXPECT_TRUE(mgr.IsMapped(b, 4096));
  // Release the first; its space is reusable.
  EXPECT_TRUE(mgr.Release(a, 10000));
  EXPECT_FALSE(mgr.IsMapped(a, 4096));
  uint64_t c = mgr.Allocate(4096, 0, false);
  EXPECT_EQ(c, a);  // first-fit reuses the gap
  // Fixed mapping over an in-use range replaces it (MAP_FIXED semantics).
  uint64_t f = mgr.Allocate(8192, b, true);
  EXPECT_EQ(f, b);
  // Partial release keeps the tails.
  uint64_t big = mgr.Allocate(5 * 4096, 0, false);
  ASSERT_NE(big, 0u);
  EXPECT_TRUE(mgr.Release(big + 4096, 4096));
  EXPECT_TRUE(mgr.IsMapped(big, 4096));
  EXPECT_FALSE(mgr.IsMapped(big + 4096, 4096));
  EXPECT_TRUE(mgr.IsMapped(big + 2 * 4096, 3 * 4096));
}

}  // namespace
