// The production IoReactor (poll/self-pipe completion loop) against real
// fds and real (short) time: sleep expiry, pipe readiness, writability,
// cancellation, fd closed while an op is in flight, and an end-to-end
// supervisor run where real sleeps park off-worker.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/host/host.h"
#include "tests/wali_test_util.h"

namespace {

constexpr int64_t kMs = 1000000;

// Collects completions with a waitable latch.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<uint64_t, host::IoCompletion>> got;

  host::IoBackend::CompletionFn fn() {
    return [this](uint64_t cookie, const host::IoCompletion& c) {
      std::lock_guard<std::mutex> lock(mu);
      got.emplace_back(cookie, c);
      cv.notify_all();
    };
  }
  bool WaitFor(size_t n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return got.size() >= n; });
  }
};

TEST(IoReactor, SleepCompletesAfterDuration) {
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  int64_t t0 = reactor.NowNanos();
  reactor.Submit(1, wali::IoOp::Sleep(5 * kMs));
  ASSERT_TRUE(c.WaitFor(1));
  EXPECT_GE(reactor.NowNanos() - t0, 5 * kMs);
  EXPECT_EQ(c.got[0].first, 1u);
  EXPECT_EQ(c.got[0].second.status, host::IoCompletion::Status::kTimedOut);
  EXPECT_EQ(reactor.pending(), 0u);
}

TEST(IoReactor, PipeBecomesReadable) {
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  reactor.Submit(7, wali::IoOp::Readable(fds[0]));
  // Nothing yet: the op must not complete on an empty pipe.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(reactor.pending(), 1u);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  ASSERT_TRUE(c.WaitFor(1));
  EXPECT_EQ(c.got[0].first, 7u);
  EXPECT_EQ(c.got[0].second.status, host::IoCompletion::Status::kReady);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(IoReactor, WritableCompletesImmediatelyOnEmptyPipe) {
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  reactor.Submit(9, wali::IoOp::Writable(fds[1]));
  ASSERT_TRUE(c.WaitFor(1));
  EXPECT_EQ(c.got[0].second.status, host::IoCompletion::Status::kReady);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(IoReactor, ReadTimeoutFires) {
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  reactor.Submit(3, wali::IoOp::Readable(fds[0], /*timeout_nanos=*/5 * kMs));
  ASSERT_TRUE(c.WaitFor(1));
  EXPECT_EQ(c.got[0].second.status, host::IoCompletion::Status::kTimedOut);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(IoReactor, CancelSuppressesCompletion) {
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  reactor.Submit(4, wali::IoOp::Sleep(500 * kMs));
  EXPECT_TRUE(reactor.Cancel(4));
  EXPECT_EQ(reactor.pending(), 0u);
  EXPECT_FALSE(reactor.Cancel(4)) << "second cancel: already gone";
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(c.got.empty());
}

TEST(IoReactor, ClosedFdCompletesInsteadOfHanging) {
  // Fd trouble while an op is in flight: closing the WRITE end makes the
  // read end POLLHUP-ready; the completion is kReady and the retry (here:
  // the caller) observes EOF from the kernel. The reactor must not hang.
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  reactor.Submit(5, wali::IoOp::Readable(fds[0]));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ::close(fds[1]);
  ASSERT_TRUE(c.WaitFor(1));
  EXPECT_EQ(c.got[0].second.status, host::IoCompletion::Status::kReady);
  char b;
  EXPECT_EQ(::read(fds[0], &b, 1), 0) << "retry sees EOF";
  ::close(fds[0]);
}

TEST(IoReactor, ManyConcurrentSleeps) {
  host::IoReactor reactor;
  Collector c;
  reactor.SetCompletionHandler(c.fn());
  for (uint64_t i = 0; i < 32; ++i) {
    reactor.Submit(i, wali::IoOp::Sleep(static_cast<int64_t>(1 + i % 4) * kMs));
  }
  ASSERT_TRUE(c.WaitFor(32));
  EXPECT_EQ(reactor.pending(), 0u);
}

std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

// Sleeps 20ms for real, exits 7.
const char* kRealSleeper = R"(
  (memory 2)
  (func (export "main") (result i32)
    (i64.store (i32.const 512) (i64.const 0))
    (i64.store (i32.const 520) (i64.const 20000000))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (i32.const 7))
)";

TEST(IoReactor, SupervisorEndToEndRealSleeps) {
  // 16 guests x 20ms real sleep on 2 workers. Synchronously that floors at
  // 8 x 20ms = 160ms of wall; with offload every guest parks on the
  // reactor and the batch finishes in a few sleep-durations. The hard
  // assertions are concurrency (in-flight > workers) and correctness; the
  // wall-clock bound is generous (CI-safe) but still far under the
  // synchronous floor.
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);
  host::ModuleCache cache;
  host::IoReactor reactor;
  host::Supervisor::Options opts;
  opts.workers = 2;
  opts.io_backend = &reactor;
  auto sup = std::make_unique<host::Supervisor>(&runtime, opts);
  auto module = cache.Load(WrapModule(kRealSleeper));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  int64_t t0 = common::MonotonicNanos();
  std::vector<host::GuestJob> jobs;
  for (int i = 0; i < 16; ++i) {
    host::GuestJob job;
    job.module = *module;
    job.argv = {"sleeper"};
    job.tenant = "t";
    jobs.push_back(std::move(job));
  }
  std::vector<host::RunReport> reports = sup->RunAll(std::move(jobs));
  int64_t wall = common::MonotonicNanos() - t0;

  for (const host::RunReport& r : reports) {
    EXPECT_TRUE(r.completed()) << r.trap_message;
    EXPECT_EQ(r.exit_code, 7);
    EXPECT_EQ(r.parks, 1u);
    EXPECT_GE(r.blocked_nanos, 15 * kMs);
  }
  host::Supervisor::IoStats s = sup->io_stats();
  EXPECT_GT(s.peak_in_flight, 2u) << "parked guests must overlap workers";
  EXPECT_LT(wall, 120 * kMs) << "16x20ms must not serialize onto 2 workers";
  sup->Shutdown();
}

}  // namespace
