// Shared helpers for engine tests: parse/validate/instantiate WAT and invoke
// an exported function in one step.
#ifndef TESTS_WAT_TEST_UTIL_H_
#define TESTS_WAT_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/wasm/wasm.h"

namespace wasm_test {

struct WatFixture {
  std::shared_ptr<wasm::Module> module;
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wasm::Instance> instance;
};

// Builds an instance from WAT; fails the test on any error.
inline WatFixture Instantiate(const std::string& wat,
                              const std::function<void(wasm::Linker&)>& add_imports = {}) {
  WatFixture fx;
  auto parsed = wasm::ParseAndValidateWat(wat);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return fx;
  fx.module = *parsed;
  fx.linker = std::make_unique<wasm::Linker>();
  if (add_imports) {
    add_imports(*fx.linker);
  }
  auto inst = fx.linker->Instantiate(fx.module);
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  if (!inst.ok()) return fx;
  fx.instance = std::move(*inst);
  return fx;
}

// Runs `func` in a fresh instance of `wat` and returns the result.
inline wasm::RunResult RunWat(const std::string& wat, const std::string& func,
                              const std::vector<wasm::Value>& args = {},
                              const wasm::ExecOptions& opts = {}) {
  WatFixture fx = Instantiate(wat);
  if (fx.instance == nullptr) {
    wasm::RunResult r;
    r.trap = wasm::TrapKind::kHostError;
    r.trap_message = "instantiation failed";
    return r;
  }
  return fx.instance->CallExport(func, args, opts);
}

// Asserts a single i32 result.
inline void ExpectI32(const std::string& wat, const std::string& func,
                      const std::vector<wasm::Value>& args, uint32_t want) {
  wasm::RunResult r = RunWat(wat, func, args);
  ASSERT_EQ(r.trap, wasm::TrapKind::kNone) << wasm::TrapKindName(r.trap) << " " << r.trap_message;
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0].i32(), want);
}

inline void ExpectI64(const std::string& wat, const std::string& func,
                      const std::vector<wasm::Value>& args, uint64_t want) {
  wasm::RunResult r = RunWat(wat, func, args);
  ASSERT_EQ(r.trap, wasm::TrapKind::kNone) << wasm::TrapKindName(r.trap) << " " << r.trap_message;
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0].i64(), want);
}

inline void ExpectTrap(const std::string& wat, const std::string& func,
                       const std::vector<wasm::Value>& args, wasm::TrapKind want) {
  wasm::RunResult r = RunWat(wat, func, args);
  EXPECT_EQ(r.trap, want) << r.trap_message;
}

}  // namespace wasm_test

#endif  // TESTS_WAT_TEST_UTIL_H_
