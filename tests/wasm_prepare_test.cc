// Prepare-pass tests: superinstruction fusion, branch-target remapping,
// cost conservation (fuel units must be identical between the wire stream
// and the fused execution stream), and linear_cost segment metadata.
#include <gtest/gtest.h>

#include <string>

#include "src/wasm/prepare.h"
#include "src/wasm/wasm.h"
#include "src/workloads/workloads.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Op;

const char* kHashWat = R"((module
  (func $hash (export "hash") (param $addr i32) (param $len i32) (result i32)
    (local $h i32) (local $i i32)
    (local.set $h (i32.const 0x811c9dc5))
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $len)))
      (local.set $h (i32.mul (i32.xor (local.get $h)
        (i32.add (local.get $addr) (local.get $i))) (i32.const 16777619)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $h))))";

uint64_t SumCosts(const std::vector<Instr>& code) {
  uint64_t total = 0;
  for (const Instr& in : code) total += in.cost;
  return total;
}

int CountFused(const std::vector<Instr>& code) {
  int n = 0;
  for (const Instr& in : code) n += wasm::IsFusedOp(in.op) ? 1 : 0;
  return n;
}

TEST(Prepare, FusesKnownPatternsAndConservesCost) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Function& fn = (*parsed)->functions[0];

  // Validate() runs the prepare pass with fusion on.
  ASSERT_FALSE(fn.prepared.code.empty());
  EXPECT_LT(fn.prepared.code.size(), fn.code.size());
  EXPECT_GT(CountFused(fn.prepared.code), 0);

  bool saw_cmp_brif = false, saw_lladd = false, saw_addconst = false;
  for (const Instr& in : fn.prepared.code) {
    saw_cmp_brif |= in.op == Op::kFI32CmpBrIf;
    saw_lladd |= in.op == Op::kFLocalLocalI32Add;
    saw_addconst |= in.op == Op::kFI32AddConst;
  }
  EXPECT_TRUE(saw_cmp_brif);   // i32.ge_u + br_if
  EXPECT_TRUE(saw_lladd);      // local.get + local.get + i32.add
  EXPECT_TRUE(saw_addconst);   // i32.const 1 + i32.add

  // Fuel-unit conservation: the fused stream must bill exactly the source
  // instruction count (this is what keeps TenantLedger math identical).
  EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size());
  EXPECT_EQ(SumCosts(fn.code), fn.code.size());  // wire stream: all cost 1

  // linear_cost invariants: every entry covers at least its own op; the
  // final (synthetic return) op is its own segment.
  ASSERT_EQ(fn.prepared.linear_cost.size(), fn.prepared.code.size());
  for (size_t i = 0; i < fn.prepared.code.size(); ++i) {
    EXPECT_GE(fn.prepared.linear_cost[i], fn.prepared.code[i].cost);
  }
  EXPECT_EQ(fn.prepared.linear_cost.back(), fn.prepared.code.back().cost);
}

TEST(Prepare, UnfusedRepreparationIsOneToOne) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok());
  Module& m = **parsed;
  wasm::PrepareOptions opts;
  opts.fuse = false;
  wasm::PrepareStats stats = wasm::PrepareModule(m, opts);
  EXPECT_EQ(stats.fused, 0u);
  const Function& fn = m.functions[0];
  ASSERT_EQ(fn.prepared.code.size(), fn.code.size());
  for (size_t i = 0; i < fn.code.size(); ++i) {
    EXPECT_EQ(fn.prepared.code[i].op, fn.code[i].op);
    EXPECT_EQ(fn.prepared.code[i].cost, 1);
  }
  // Re-preparing with fusion restores the fused form (idempotent rebuild).
  wasm::PrepareModule(m);
  EXPECT_GT(CountFused(fn.prepared.code), 0);
  EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size());
}

TEST(Prepare, FusedAndUnfusedExecutionsAgreeExactly) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok());
  std::shared_ptr<Module> m = *parsed;

  auto run = [&]() {
    wasm::Linker linker;
    auto inst = linker.Instantiate(m);
    EXPECT_TRUE(inst.ok());
    return (*inst)->CallExport(
        "hash", {wasm::Value::I32(640), wasm::Value::I32(66)}, {});
  };

  wasm::RunResult fused = run();
  wasm::PrepareOptions opts;
  opts.fuse = false;
  wasm::PrepareModule(*m, opts);
  wasm::RunResult unfused = run();

  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(unfused.ok());
  EXPECT_EQ(fused.values[0].bits, unfused.values[0].bits);
  EXPECT_EQ(fused.executed_instrs, unfused.executed_instrs);
}

TEST(Prepare, BranchTargetsStayInsideRewrittenStream) {
  // br_table + nested blocks + fusions before and after branch targets.
  const char* wat = R"((module
    (func (export "f") (param $x i32) (result i32)
      (local $acc i32)
      (block $b2 (block $b1 (block $b0
        (br_table $b0 $b1 $b2 (local.get $x)))
        (local.set $acc (i32.add (local.get $acc) (i32.const 1))))
        (local.set $acc (i32.add (local.get $acc) (i32.const 10))))
      (i32.add (local.get $acc) (i32.const 100)))
  ))";
  auto parsed = wasm::ParseAndValidateWat(wat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Function& fn = (*parsed)->functions[0];
  const size_t n = fn.prepared.code.size();
  for (const Instr& in : fn.prepared.code) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kElse:
      case Op::kBr:
      case Op::kBrIf:
      case Op::kFBrIfEqz:
      case Op::kFI32CmpBrIf:
        EXPECT_LT(in.a, n);
        break;
      default:
        break;
    }
  }
  for (const wasm::BrTable& t : fn.prepared.br_tables) {
    for (const wasm::BrTarget& target : t.targets) {
      EXPECT_LT(target.pc, n);
    }
  }
  // And the rewritten table dispatch actually works.
  for (uint32_t x : {0u, 1u, 2u, 7u}) {
    uint32_t want = x == 0 ? 111 : (x == 1 ? 110 : 100);
    wasm_test::ExpectI32(wat, "f", {wasm::Value::I32(x)}, want);
  }
}

TEST(Prepare, CostConservationAcrossWorkloadSuite) {
  // Every benchmark workload's module must bill identical fuel in wire and
  // prepared form — this is the suite the host supervisor actually serves.
  for (const workloads::Workload& w : workloads::AllWorkloads()) {
    if (w.wat.empty()) continue;
    auto parsed = wasm::ParseAndValidateWat(workloads::InstantiateWat(w, 3));
    ASSERT_TRUE(parsed.ok()) << w.name << ": " << parsed.status().ToString();
    for (const Function& fn : (*parsed)->functions) {
      EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size())
          << w.name << "/" << fn.debug_name;
      EXPECT_EQ(fn.prepared.linear_cost.size(), fn.prepared.code.size());
    }
  }
}

TEST(Prepare, InternalOpsAreNotWireOps) {
  EXPECT_FALSE(wasm::IsKnownOp(static_cast<uint32_t>(Op::kFLocalLocalI32Add)));
  EXPECT_FALSE(wasm::IsKnownOp(static_cast<uint32_t>(Op::kFI32CmpBrIf)));
  EXPECT_TRUE(wasm::IsFusedOp(Op::kFBrIfEqz));
  EXPECT_FALSE(wasm::IsFusedOp(Op::kI32Add));
  // Names exist for diagnostics.
  EXPECT_NE(std::string(wasm::OpName(Op::kFLocalCopy)), "<bad-op>");
}

}  // namespace
