// Prepare-pass tests: superinstruction fusion, branch-target remapping,
// cost conservation (fuel units must be identical between the wire stream
// and the fused execution stream), and linear_cost segment metadata.
#include <gtest/gtest.h>

#include <string>

#include "src/wasm/prepare.h"
#include "src/wasm/wasm.h"
#include "src/workloads/workloads.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::Function;
using wasm::Instr;
using wasm::Module;
using wasm::Op;

const char* kHashWat = R"((module
  (func $hash (export "hash") (param $addr i32) (param $len i32) (result i32)
    (local $h i32) (local $i i32)
    (local.set $h (i32.const 0x811c9dc5))
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $len)))
      (local.set $h (i32.mul (i32.xor (local.get $h)
        (i32.add (local.get $addr) (local.get $i))) (i32.const 16777619)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $h))))";

uint64_t SumCosts(const std::vector<Instr>& code) {
  uint64_t total = 0;
  for (const Instr& in : code) total += in.cost;
  return total;
}

int CountFused(const std::vector<Instr>& code) {
  int n = 0;
  for (const Instr& in : code) n += wasm::IsFusedOp(in.op) ? 1 : 0;
  return n;
}

TEST(Prepare, FusesKnownPatternsAndConservesCost) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Function& fn = (*parsed)->functions[0];

  // Validate() runs the prepare pass with fusion on.
  ASSERT_FALSE(fn.prepared.code.empty());
  EXPECT_LT(fn.prepared.code.size(), fn.code.size());
  EXPECT_GT(CountFused(fn.prepared.code), 0);

  // The widened pass takes the widest match at each position: the loop
  // header (local.get+local.get+cmp+br_if) and the counter update
  // (local.get+i32.const+add+local.set) fuse whole; the hash mix keeps the
  // 3-op local+local add and a const-op for the FNV multiply.
  bool saw_llcmp_brif = false, saw_lladd = false, saw_constop = false,
       saw_opset = false;
  for (const Instr& in : fn.prepared.code) {
    saw_llcmp_brif |= in.op == Op::kFLocalLocalCmpBrIf;
    saw_lladd |= in.op == Op::kFLocalLocalI32Add;
    saw_constop |= in.op == Op::kFI32ConstOp;
    saw_opset |= in.op == Op::kFLocalConstI32OpSet;
  }
  EXPECT_TRUE(saw_llcmp_brif);  // local.get+local.get+i32.ge_u+br_if
  EXPECT_TRUE(saw_lladd);       // local.get + local.get + i32.add
  EXPECT_TRUE(saw_constop);     // i32.const 16777619 + i32.mul
  EXPECT_TRUE(saw_opset);       // local.get $i+i32.const 1+i32.add+local.set $i

  // Fuel-unit conservation: the fused stream must bill exactly the source
  // instruction count (this is what keeps TenantLedger math identical).
  EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size());
  EXPECT_EQ(SumCosts(fn.code), fn.code.size());  // wire stream: all cost 1

  // linear_cost invariants: every entry covers at least its own op; the
  // final (synthetic return) op is its own segment.
  ASSERT_EQ(fn.prepared.linear_cost.size(), fn.prepared.code.size());
  for (size_t i = 0; i < fn.prepared.code.size(); ++i) {
    EXPECT_GE(fn.prepared.linear_cost[i], fn.prepared.code[i].cost);
  }
  EXPECT_EQ(fn.prepared.linear_cost.back(), fn.prepared.code.back().cost);
}

// One WAT snippet per new superinstruction: the pattern must fuse, conserve
// fuel units, and still compute the right answer.
struct FusionCase {
  const char* name;
  const char* wat;
  Op expect_op;
  const char* func = "f";
  std::vector<wasm::Value> args;
  uint32_t want = 0;
};

TEST(Prepare, WidenedSuperinstructionSet) {
  const std::vector<FusionCase> cases = {
      {"i64_const_op",
       R"((module (func (export "f") (param $x i64) (result i32)
            (i32.wrap_i64 (i64.and (local.get $x) (i64.const 0xFF))))))",
       Op::kFI64ConstOp, "f", {wasm::Value::I64(0x1234)}, 0x34},
      {"i64_const_shl",
       R"((module (func (export "f") (param $x i64) (result i32)
            (i32.wrap_i64 (i64.shl (local.get $x) (i64.const 4))))))",
       Op::kFI64ConstOp, "f", {wasm::Value::I64(3)}, 48},
      {"i32_const_op",
       // The lhs must not be a bare local.get, or the 3-op local+const+op
       // pattern wins; this pins the 2-op const+op form.
       R"((module (func (export "f") (param $x i32) (result i32)
            (i32.xor (i32.and (local.get $x) (local.get $x)) (i32.const 0x5A)))))",
       Op::kFI32ConstOp, "f", {wasm::Value::I32(0xFF)}, 0xA5},
      {"local_i64_load",
       R"((module (memory 1) (func (export "f") (param $a i32) (result i32)
            (i64.store (i32.const 64) (i64.const 0x0102030405060708))
            (i32.wrap_i64 (i64.load (local.get $a))))))",
       Op::kFLocalI64Load, "f", {wasm::Value::I32(64)}, 0x05060708},
      {"load_op",
       R"((module (memory 1) (func (export "f") (param $x i32) (result i32)
            (i32.store (i32.const 16) (i32.const 40))
            (i32.add (local.get $x) (i32.load (i32.mul (i32.const 4) (i32.const 4)))))))",
       Op::kFI32LoadOp, "f", {wasm::Value::I32(2)}, 42},
      {"i64_cmp_brif",
       // Two non-const operands so neither const-op nor local+const
       // patterns swallow the comparison before the branch pair forms.
       R"((module (func (export "f") (param $x i64) (param $y i64) (result i32)
            (block $b
              (br_if $b (i64.lt_u (local.get $x) (local.get $y)))
              (return (i32.const 7)))
            (i32.const 3))))",
       Op::kFI64CmpBrIf, "f", {wasm::Value::I64(5), wasm::Value::I64(10)}, 3},
      {"i32_cmp_sel",
       R"((module (func (export "f") (param $x i32) (param $y i32) (result i32)
            (select (i32.const 11) (i32.const 22)
                    (i32.lt_u (i32.and (local.get $x) (i32.const 7))
                              (local.get $y))))))",
       Op::kFI32CmpSel, "f", {wasm::Value::I32(3), wasm::Value::I32(10)}, 11},
      {"i64_cmp_sel",
       R"((module (func (export "f") (param $x i64) (param $y i64) (result i32)
            (select (i32.const 11) (i32.const 22)
                    (i64.gt_u (i64.add (local.get $x) (i64.const 1))
                              (local.get $y))))))",
       Op::kFI64CmpSel, "f", {wasm::Value::I64(3), wasm::Value::I64(10)}, 22},
      {"tee_brif",
       R"((module (func (export "f") (param $x i32) (result i32)
            (local $t i32)
            (block $b
              (br_if $b (local.tee $t (local.get $x)))
              (return (i32.const 5)))
            (local.get $t))))",
       Op::kFLocalTeeBrIf, "f", {wasm::Value::I32(9)}, 9},
      {"local_local_cmp",
       R"((module (func (export "f") (param $a i32) (param $b i32) (result i32)
            (i32.add (i32.const 10) (i32.lt_u (local.get $a) (local.get $b))))))",
       Op::kFLocalLocalCmp, "f", {wasm::Value::I32(1), wasm::Value::I32(2)}, 11},
      {"local_local_cmp_brif",
       R"((module (func (export "f") (param $a i32) (param $b i32) (result i32)
            (block $out
              (br_if $out (i32.ge_u (local.get $a) (local.get $b)))
              (return (i32.const 1)))
            (i32.const 2))))",
       Op::kFLocalLocalCmpBrIf, "f",
       {wasm::Value::I32(5), wasm::Value::I32(3)}, 2},
      {"local_const_op",
       R"((module (func (export "f") (param $x i32) (result i32)
            (i32.add (i32.const 100) (i32.shl (local.get $x) (i32.const 2))))))",
       Op::kFLocalConstI32Op, "f", {wasm::Value::I32(3)}, 112},
      {"local_const_op_set",
       R"((module (func (export "f") (param $x i32) (result i32)
            (local $y i32)
            (local.set $y (i32.mul (local.get $x) (i32.const 3)))
            (i32.add (local.get $y) (i32.const 0)))))",
       Op::kFLocalConstI32OpSet, "f", {wasm::Value::I32(7)}, 21},
  };
  for (const FusionCase& c : cases) {
    SCOPED_TRACE(c.name);
    auto parsed = wasm::ParseAndValidateWat(c.wat);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const Function& fn = (*parsed)->functions[0];
    bool saw = false;
    for (const Instr& in : fn.prepared.code) {
      saw |= in.op == c.expect_op;
    }
    EXPECT_TRUE(saw) << "expected " << wasm::OpName(c.expect_op);
    // Cost conservation holds for every widened pattern.
    EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size());
    wasm_test::ExpectI32(c.wat, c.func, c.args, c.want);
  }
}

TEST(Prepare, DirectCallRewriteOnlyForLocalWasmCallees) {
  const char* wat = R"((module
    (import "env" "h" (func $h (result i32)))
    (func $leaf (result i32) (i32.const 21))
    (func (export "f") (result i32)
      (i32.add (call $leaf) (call $leaf)))
    (func (export "g") (result i32) (call $h))
  ))";
  auto parsed = wasm::ParseAndValidateWat(wat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Module& m = **parsed;
  // "f" calls a local wasm function: both sites rewritten to the fast op.
  int direct = 0, generic = 0;
  for (const Instr& in : m.functions[1].prepared.code) {
    direct += in.op == Op::kFCallWasm ? 1 : 0;
    generic += in.op == Op::kCall ? 1 : 0;
  }
  EXPECT_EQ(direct, 2);
  EXPECT_EQ(generic, 0);
  // "g" calls an imported (host) function: the generic call survives.
  direct = generic = 0;
  for (const Instr& in : m.functions[2].prepared.code) {
    direct += in.op == Op::kFCallWasm ? 1 : 0;
    generic += in.op == Op::kCall ? 1 : 0;
  }
  EXPECT_EQ(direct, 0);
  EXPECT_EQ(generic, 1);
  // kFCallWasm keeps cost 1 (a 1:1 rewrite, not a fusion).
  EXPECT_EQ(m.prepare_stats.direct_calls, 2u);
}

TEST(Prepare, ModuleKeepsPerOpFusionStats) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok());
  const wasm::PrepareStats& st = (*parsed)->prepare_stats;
  EXPECT_EQ(st.functions, 1u);
  EXPECT_GT(st.fused, 0u);
  EXPECT_GT(st.source_instrs, st.prepared_instrs);
  // Per-op counts sum to the total superinstruction count (direct-call
  // rewrites are tracked separately from fusions).
  uint64_t sum = 0;
  for (uint32_t i = 0; i < wasm::kNumInternalOps; ++i) {
    sum += st.per_op[i];
  }
  EXPECT_EQ(sum, static_cast<uint64_t>(st.fused) + st.direct_calls);
  EXPECT_GT(
      st.per_op[static_cast<uint32_t>(Op::kFLocalLocalCmpBrIf) - wasm::kFirstInternalOp],
      0u);
}

TEST(Prepare, UnfusedRepreparationIsOneToOne) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok());
  Module& m = **parsed;
  wasm::PrepareOptions opts;
  opts.fuse = false;
  wasm::PrepareStats stats = wasm::PrepareModule(m, opts);
  EXPECT_EQ(stats.fused, 0u);
  const Function& fn = m.functions[0];
  ASSERT_EQ(fn.prepared.code.size(), fn.code.size());
  for (size_t i = 0; i < fn.code.size(); ++i) {
    EXPECT_EQ(fn.prepared.code[i].op, fn.code[i].op);
    EXPECT_EQ(fn.prepared.code[i].cost, 1);
  }
  // Re-preparing with fusion restores the fused form (idempotent rebuild).
  wasm::PrepareModule(m);
  EXPECT_GT(CountFused(fn.prepared.code), 0);
  EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size());
}

TEST(Prepare, FusedAndUnfusedExecutionsAgreeExactly) {
  auto parsed = wasm::ParseAndValidateWat(kHashWat);
  ASSERT_TRUE(parsed.ok());
  std::shared_ptr<Module> m = *parsed;

  auto run = [&]() {
    wasm::Linker linker;
    auto inst = linker.Instantiate(m);
    EXPECT_TRUE(inst.ok());
    return (*inst)->CallExport(
        "hash", {wasm::Value::I32(640), wasm::Value::I32(66)}, {});
  };

  wasm::RunResult fused = run();
  wasm::PrepareOptions opts;
  opts.fuse = false;
  wasm::PrepareModule(*m, opts);
  wasm::RunResult unfused = run();

  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(unfused.ok());
  EXPECT_EQ(fused.values[0].bits, unfused.values[0].bits);
  EXPECT_EQ(fused.executed_instrs, unfused.executed_instrs);
}

TEST(Prepare, BranchTargetsStayInsideRewrittenStream) {
  // br_table + nested blocks + fusions before and after branch targets.
  const char* wat = R"((module
    (func (export "f") (param $x i32) (result i32)
      (local $acc i32)
      (block $b2 (block $b1 (block $b0
        (br_table $b0 $b1 $b2 (local.get $x)))
        (local.set $acc (i32.add (local.get $acc) (i32.const 1))))
        (local.set $acc (i32.add (local.get $acc) (i32.const 10))))
      (i32.add (local.get $acc) (i32.const 100)))
  ))";
  auto parsed = wasm::ParseAndValidateWat(wat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Function& fn = (*parsed)->functions[0];
  const size_t n = fn.prepared.code.size();
  for (const Instr& in : fn.prepared.code) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kElse:
      case Op::kBr:
      case Op::kBrIf:
      case Op::kFBrIfEqz:
      case Op::kFI32CmpBrIf:
        EXPECT_LT(in.a, n);
        break;
      default:
        break;
    }
  }
  for (const wasm::BrTable& t : fn.prepared.br_tables) {
    for (const wasm::BrTarget& target : t.targets) {
      EXPECT_LT(target.pc, n);
    }
  }
  // And the rewritten table dispatch actually works.
  for (uint32_t x : {0u, 1u, 2u, 7u}) {
    uint32_t want = x == 0 ? 111 : (x == 1 ? 110 : 100);
    wasm_test::ExpectI32(wat, "f", {wasm::Value::I32(x)}, want);
  }
}

TEST(Prepare, CostConservationAcrossWorkloadSuite) {
  // Every benchmark workload's module must bill identical fuel in wire and
  // prepared form — this is the suite the host supervisor actually serves.
  for (const workloads::Workload& w : workloads::AllWorkloads()) {
    if (w.wat.empty()) continue;
    auto parsed = wasm::ParseAndValidateWat(workloads::InstantiateWat(w, 3));
    ASSERT_TRUE(parsed.ok()) << w.name << ": " << parsed.status().ToString();
    for (const Function& fn : (*parsed)->functions) {
      EXPECT_EQ(SumCosts(fn.prepared.code), fn.code.size())
          << w.name << "/" << fn.debug_name;
      EXPECT_EQ(fn.prepared.linear_cost.size(), fn.prepared.code.size());
    }
  }
}

TEST(Prepare, InternalOpsAreNotWireOps) {
  EXPECT_FALSE(wasm::IsKnownOp(static_cast<uint32_t>(Op::kFLocalLocalI32Add)));
  EXPECT_FALSE(wasm::IsKnownOp(static_cast<uint32_t>(Op::kFI32CmpBrIf)));
  EXPECT_TRUE(wasm::IsFusedOp(Op::kFBrIfEqz));
  EXPECT_FALSE(wasm::IsFusedOp(Op::kI32Add));
  // Names exist for diagnostics.
  EXPECT_NE(std::string(wasm::OpName(Op::kFLocalCopy)), "<bad-op>");
}

}  // namespace
