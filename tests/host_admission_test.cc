// Deterministic scheduler harness for the supervisor's admission control:
// bounded-queue rejection, weighted round-robin fairness, deadline shedding,
// and per-tenant budget exhaustion. Determinism comes from two hooks on
// Supervisor::Options — start_paused (build the whole queue before any
// worker pops) and a manual clock (deadlines only expire when the test
// advances time) — plus a single worker, so dispatch order is exactly the
// scheduler's pop order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/host/host.h"
#include "tests/wali_test_util.h"

namespace {

std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

// Trivial guest: exits with argv[1]'s first digit (0 when absent).
const char* kQuickGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (if (i64.lt_s (call $get_argc) (i64.const 2))
      (then (return (i32.const 0))))
    (drop (call $copy_argv (i64.const 512) (i64.const 1)))
    (i32.sub (i32.load8_u (i32.const 512)) (i32.const 48)))
)";

// Manual scheduler clock shared between the test and the supervisor.
struct ManualClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);

  std::function<int64_t()> fn() const {
    auto n = now;
    return [n] { return n->load(std::memory_order_acquire); };
  }
  void Advance(int64_t nanos) {
    now->fetch_add(nanos, std::memory_order_acq_rel);
  }
};

struct AdmissionWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<host::ModuleCache> cache;
  std::unique_ptr<host::Supervisor> sup;
  ManualClock clock;
};

AdmissionWorld MakeWorld(size_t workers, size_t queue_depth,
                         bool start_paused) {
  AdmissionWorld w;
  w.linker = std::make_unique<wasm::Linker>();
  w.runtime = std::make_unique<wali::WaliRuntime>(w.linker.get());
  w.cache = std::make_unique<host::ModuleCache>();
  host::Supervisor::Options opts;
  opts.workers = workers;
  opts.queue_depth = queue_depth;
  opts.start_paused = start_paused;
  opts.clock = w.clock.fn();
  opts.pool.max_idle_per_module = workers;
  w.sup = std::make_unique<host::Supervisor>(w.runtime.get(), opts);
  return w;
}

host::GuestJob MakeJob(std::shared_ptr<const wasm::Module> module,
                       const std::string& tenant, uint32_t weight = 0,
                       int64_t deadline = 0) {
  host::GuestJob job;
  job.module = module;
  job.argv = {tenant};
  job.tenant = tenant;
  job.weight = weight;
  job.deadline_nanos = deadline;
  return job;
}

TEST(Admission, BoundedQueueRejectsBeyondDepth) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/2,
                               /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(kQuickGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  // Paused supervisor: nothing drains, so the queue depth is exactly what
  // Submit sees. Jobs 3 and 4 must bounce immediately.
  std::vector<std::future<host::RunReport>> futures;
  for (int k = 0; k < 4; ++k) {
    futures.push_back(w.sup->Submit(MakeJob(*module, "tenant-a")));
  }
  EXPECT_EQ(w.sup->queued(), 2u);
  for (int k = 2; k < 4; ++k) {
    ASSERT_EQ(futures[k].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "rejection must resolve the future immediately";
    host::RunReport r = futures[k].get();
    EXPECT_EQ(r.outcome, host::Outcome::kRejected);
    EXPECT_EQ(r.trap, wasm::TrapKind::kHostError);
    EXPECT_EQ(r.dispatch_seq, 0u);
    EXPECT_EQ(r.fuel_consumed, 0u);
  }

  w.sup->Resume();
  for (int k = 0; k < 2; ++k) {
    host::RunReport r = futures[k].get();
    EXPECT_TRUE(r.completed()) << r.trap_message;
    EXPECT_EQ(r.outcome, host::Outcome::kCompleted);
  }
  host::TenantUsage u = w.sup->ledger().usage("tenant-a");
  EXPECT_EQ(u.rejected, 2u);
  EXPECT_EQ(u.runs, 2u);
  // A queue slot freed by a completed run admits new work again.
  host::RunReport r = w.sup->Submit(MakeJob(*module, "tenant-a")).get();
  EXPECT_TRUE(r.completed());
}

TEST(Admission, WeightedFairnessBetweenTwoTenants) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(kQuickGuest));
  ASSERT_TRUE(module.ok());

  // Saturation: both tenants have a full backlog before the single worker
  // starts popping. heavy (weight 2) gets bursts of two slots, light
  // (weight 1) one slot per ring rotation: H H L H H L ...
  const int kHeavyJobs = 12, kLightJobs = 6;
  std::vector<std::future<host::RunReport>> heavy, light;
  for (int k = 0; k < kHeavyJobs; ++k) {
    heavy.push_back(w.sup->Submit(MakeJob(*module, "heavy", /*weight=*/2)));
  }
  for (int k = 0; k < kLightJobs; ++k) {
    light.push_back(w.sup->Submit(MakeJob(*module, "light", /*weight=*/1)));
  }
  w.sup->Resume();

  // dispatch_seq is the scheduler's pop order (1-based, single worker).
  std::vector<char> order(kHeavyJobs + kLightJobs, '?');
  for (auto& f : heavy) {
    host::RunReport r = f.get();
    ASSERT_TRUE(r.completed()) << r.trap_message;
    ASSERT_GE(r.dispatch_seq, 1u);
    order[r.dispatch_seq - 1] = 'H';
  }
  for (auto& f : light) {
    host::RunReport r = f.get();
    ASSERT_TRUE(r.completed()) << r.trap_message;
    order[r.dispatch_seq - 1] = 'L';
  }

  // Over any prefix, neither tenant exceeds its weight share (2/3 vs 1/3)
  // by more than one slot — the WRR guarantee the header promises.
  int h = 0, l = 0;
  for (size_t n = 0; n < order.size(); ++n) {
    ASSERT_NE(order[n], '?') << "dispatch_seq gap at slot " << n;
    (order[n] == 'H' ? h : l)++;
    double share_h = 2.0 * (n + 1) / 3.0;
    double share_l = 1.0 * (n + 1) / 3.0;
    EXPECT_LE(h, static_cast<int>(share_h) + 1)
        << "heavy over its share at prefix " << n + 1;
    EXPECT_LE(l, static_cast<int>(share_l) + 1)
        << "light over its share at prefix " << n + 1;
  }
  // Under saturation (first 9 slots both tenants still had a backlog) the
  // weight-2 tenant completes exactly 2x the weight-1 tenant's runs.
  int h9 = 0;
  for (int n = 0; n < 9; ++n) h9 += order[n] == 'H' ? 1 : 0;
  EXPECT_EQ(h9, 6);
  EXPECT_EQ(9 - h9, 3);
}

TEST(Admission, DeadlineSheddingWithoutExecution) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(kQuickGuest));
  ASSERT_TRUE(module.ok());

  // Deadline at t=100ns on the manual clock; the keeper has none.
  auto doomed = w.sup->Submit(
      MakeJob(*module, "tenant-a", /*weight=*/0, /*deadline=*/100));
  auto keeper = w.sup->Submit(MakeJob(*module, "tenant-a"));
  w.clock.Advance(200);  // the doomed job's deadline passes while queued
  w.sup->Resume();

  host::RunReport shed = doomed.get();
  EXPECT_EQ(shed.outcome, host::Outcome::kShed);
  EXPECT_EQ(shed.trap, wasm::TrapKind::kHostError);
  // Zero guest execution: never dispatched, never instantiated, no fuel,
  // no syscalls.
  EXPECT_EQ(shed.dispatch_seq, 0u);
  EXPECT_EQ(shed.fuel_consumed, 0u);
  EXPECT_EQ(shed.executed_instrs, 0u);
  EXPECT_EQ(shed.total_syscalls, 0u);
  EXPECT_EQ(shed.queue_nanos, 200);

  host::RunReport ok = keeper.get();
  EXPECT_TRUE(ok.completed()) << ok.trap_message;
  EXPECT_EQ(w.sup->ledger().usage("tenant-a").shed, 1u);
  EXPECT_EQ(w.sup->ledger().usage("tenant-a").runs, 1u);
}

TEST(Admission, FuelBudgetStopsRunMidwayThenRefusesAdmission) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/false);
  // Spin guest: far more instructions than the tenant's lifetime budget.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 1000000)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 7))
  )"));
  ASSERT_TRUE(module.ok());

  host::TenantBudget budget;
  budget.max_fuel = 50000;  // lifetime instruction allowance
  w.sup->ledger().SetBudget("metered", budget);

  // First run: admitted, but the remaining budget is armed as this run's
  // fuel, so the spin is cut off mid-run.
  host::RunReport first = w.sup->Submit(MakeJob(*module, "metered")).get();
  EXPECT_EQ(first.outcome, host::Outcome::kBudget);
  EXPECT_EQ(first.trap, wasm::TrapKind::kFuelExhausted);
  EXPECT_GT(first.fuel_consumed, 0u);
  EXPECT_LE(first.fuel_consumed, budget.max_fuel + 1);

  // Second run: the ledger remembers; the tenant is refused before a slot
  // is even leased.
  host::RunReport second = w.sup->Submit(MakeJob(*module, "metered")).get();
  EXPECT_EQ(second.outcome, host::Outcome::kBudget);
  EXPECT_EQ(second.fuel_consumed, 0u);
  EXPECT_NE(second.trap_message.find("fuel"), std::string::npos)
      << second.trap_message;
  EXPECT_GE(second.dispatch_seq, 1u) << "refusal still consumes a slot";

  // An unmetered tenant on the same supervisor is unaffected.
  host::RunReport other = w.sup->Submit(MakeJob(*module, "free")).get();
  EXPECT_TRUE(other.completed()) << other.trap_message;
  EXPECT_EQ(other.exit_code, 7);

  host::TenantUsage u = w.sup->ledger().usage("metered");
  EXPECT_GE(u.budget_stops, 2u);
  EXPECT_GE(u.fuel, first.fuel_consumed);
}

TEST(Admission, MemoryBudgetCapsCommitAtGrow) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/false);
  // Tries one big grow (20 pages at once), then single pages; exits with
  // the count of grows that succeeded.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (local $won i32)
      (if (i32.ne (memory.grow (i32.const 20)) (i32.const -1))
        (then (local.set $won (i32.add (local.get $won) (i32.const 1)))))
      (block $done
        (loop $grow
          (br_if $done (i32.ge_u (local.get $i) (i32.const 30)))
          (if (i32.ne (memory.grow (i32.const 1)) (i32.const -1))
            (then (local.set $won (i32.add (local.get $won) (i32.const 1)))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $grow)))
      (local.get $won))
  )"));
  ASSERT_TRUE(module.ok());

  host::TenantBudget budget;
  budget.max_mem_pages = 6;
  w.sup->ledger().SetBudget("memhog", budget);

  host::RunReport r = w.sup->Submit(MakeJob(*module, "memhog")).get();
  // The cap is enforced at the allocation: the 20-page surge fails (no
  // overshoot, not even transiently), single-page grows succeed only up to
  // the cap (2 declared + 4 grown = 6), and the guest otherwise runs on.
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_EQ(r.mem_high_water_pages, 6u);
  // The run stayed within budget, so it is not a budget stop.
  EXPECT_EQ(w.sup->ledger().usage("memhog").budget_stops, 0u);
}

TEST(Admission, MemoryBudgetBelowModuleMinTripsAtSafepoint) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/false);
  // The module declares 2 pages; the cap is 1, so the process is over
  // budget from instantiation — the safepoint backstop must kill it at the
  // first poll (the grow-time check never fires: nothing grows).
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 100000)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok());

  host::TenantBudget budget;
  budget.max_mem_pages = 1;
  w.sup->ledger().SetBudget("tiny", budget);

  host::RunReport r = w.sup->Submit(MakeJob(*module, "tiny")).get();
  EXPECT_EQ(r.outcome, host::Outcome::kBudget);
  EXPECT_EQ(r.trap, wasm::TrapKind::kBudgetExhausted);
  EXPECT_NE(r.trap_message.find("memory"), std::string::npos)
      << r.trap_message;
  EXPECT_EQ(w.sup->ledger().usage("tiny").budget_stops, 1u);
}

TEST(Admission, SyscallBudgetTripsAtDispatch) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/false);
  // Issues 100 getpid calls; the tenant's lifetime budget allows 5.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (block $done
        (loop $call
          (br_if $done (i32.ge_u (local.get $i) (i32.const 100)))
          (drop (call $getpid))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $call)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok());

  host::TenantBudget budget;
  budget.max_syscalls = 5;
  w.sup->ledger().SetBudget("chatty", budget);

  host::RunReport r = w.sup->Submit(MakeJob(*module, "chatty")).get();
  EXPECT_EQ(r.outcome, host::Outcome::kBudget);
  EXPECT_EQ(r.trap, wasm::TrapKind::kBudgetExhausted);
  EXPECT_NE(r.trap_message.find("syscall"), std::string::npos)
      << r.trap_message;
  // Exactly the budgeted dispatches reached the kernel; the tripping sixth
  // did not execute and is not billed.
  EXPECT_EQ(r.total_syscalls, 5u);
  EXPECT_EQ(w.sup->ledger().usage("chatty").syscalls, 5u);

  // The ledger remembers across runs: the next run is refused at admission.
  host::RunReport second = w.sup->Submit(MakeJob(*module, "chatty")).get();
  EXPECT_EQ(second.outcome, host::Outcome::kBudget);
  EXPECT_EQ(second.total_syscalls, 0u);
}

TEST(Admission, ConcurrentRunsSplitTheBudgetInsteadOfOvershooting) {
  // Regression for N-fold budget overshoot: with 4 workers running the
  // same tenant concurrently, each run must NOT be armed with the full
  // remaining fuel slice. Reservations make the cumulative total hard: the
  // ledger can exceed the budget only by the per-run trap overshoot (~1
  // instruction per run), never by workers x budget.
  AdmissionWorld w = MakeWorld(/*workers=*/4, /*queue_depth=*/0,
                               /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 1000000)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 7))
  )"));
  ASSERT_TRUE(module.ok());

  const uint64_t kBudgetFuel = 50000;
  host::TenantBudget budget;
  budget.max_fuel = kBudgetFuel;
  w.sup->ledger().SetBudget("metered", budget);

  const int kJobs = 8;
  std::vector<std::future<host::RunReport>> futures;
  for (int k = 0; k < kJobs; ++k) {
    futures.push_back(w.sup->Submit(MakeJob(*module, "metered")));
  }
  w.sup->Resume();
  int budget_stopped = 0;
  for (auto& f : futures) {
    host::RunReport r = f.get();
    EXPECT_EQ(r.outcome, host::Outcome::kBudget);
    budget_stopped += 1;
  }
  EXPECT_EQ(budget_stopped, kJobs);
  host::TenantUsage u = w.sup->ledger().usage("metered");
  EXPECT_LE(u.fuel, kBudgetFuel + static_cast<uint64_t>(kJobs) * 2)
      << "concurrent runs overshot the cumulative fuel budget";
  EXPECT_GT(u.fuel, 0u);
}

TEST(Admission, CpuBudgetStopsSpinningGuest) {
  AdmissionWorld w = MakeWorld(/*workers=*/1, /*queue_depth=*/0,
                               /*start_paused=*/false);
  // A spin that would take far longer than the CPU allowance (the loop
  // bound keeps the test finite even if enforcement were broken).
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 268435456)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok());

  host::TenantBudget budget;
  budget.max_cpu_nanos = 20 * 1000 * 1000;  // 20ms lifetime CPU
  w.sup->ledger().SetBudget("spinner", budget);

  host::RunReport r = w.sup->Submit(MakeJob(*module, "spinner")).get();
  EXPECT_EQ(r.outcome, host::Outcome::kBudget);
  EXPECT_EQ(r.trap, wasm::TrapKind::kBudgetExhausted);
  EXPECT_NE(r.trap_message.find("cpu"), std::string::npos) << r.trap_message;
}

TEST(Admission, BudgetedTenantWithPerRunFuelRunsConcurrently) {
  // Regression: a tenant with ample budget must not have concurrent runs
  // spuriously refused or starved just because another of its runs is in
  // flight. Per-run fuel caps bound each reservation's demand, so the
  // unreserved remainder stays available to the other workers.
  AdmissionWorld w = MakeWorld(/*workers=*/4, /*queue_depth=*/0,
                               /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(kQuickGuest));
  ASSERT_TRUE(module.ok());

  host::TenantBudget budget;
  budget.max_fuel = 1000 * 1000;  // ample: ~8 runs of ~100s of instructions
  w.sup->ledger().SetBudget("wealthy", budget);

  const int kJobs = 8;
  std::vector<std::future<host::RunReport>> futures;
  for (int k = 0; k < kJobs; ++k) {
    host::GuestJob job = MakeJob(*module, "wealthy");
    job.fuel = 2000;  // per-run cap == reservation demand
    futures.push_back(w.sup->Submit(std::move(job)));
  }
  w.sup->Resume();
  for (auto& f : futures) {
    host::RunReport r = f.get();
    EXPECT_TRUE(r.completed())
        << host::OutcomeName(r.outcome) << ": " << r.trap_message;
  }
  host::TenantUsage u = w.sup->ledger().usage("wealthy");
  EXPECT_EQ(u.runs, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(u.budget_stops, 0u);
  EXPECT_LT(u.fuel, budget.max_fuel);
}

TEST(Admission, ShutdownDrainsQueuedJobs) {
  AdmissionWorld w = MakeWorld(/*workers=*/2, /*queue_depth=*/0,
                               /*start_paused=*/true);
  auto module = w.cache->Load(WrapModule(kQuickGuest));
  ASSERT_TRUE(module.ok());
  std::vector<std::future<host::RunReport>> futures;
  for (int k = 0; k < 6; ++k) {
    futures.push_back(w.sup->Submit(MakeJob(*module, "t" + std::to_string(k % 2))));
  }
  // Shutdown overrides pause: queued work drains before workers exit.
  w.sup->Shutdown();
  for (auto& f : futures) {
    host::RunReport r = f.get();
    EXPECT_TRUE(r.completed()) << r.trap_message;
  }
}

}  // namespace
