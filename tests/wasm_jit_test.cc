// Differential tests for the baseline template-JIT tier: threaded dispatch
// with the JIT enabled (immediate and mid-run tier-up) must be bit-identical
// to the switch-loop oracle and to the JIT-off threaded loop — same result
// values, same trap kinds at the same points, same executed_instrs across
// dense fuel sweeps that land INSIDE compiled segments, same
// suspension/resume behavior. On builds where the tier is compiled out
// (JitAvailable() == false) every configuration still runs and must still
// agree; the tier-engagement assertions are gated.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/wasm/prepare.h"
#include "src/wasm/wasm.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::DispatchMode;
using wasm::ExecOptions;
using wasm::JitTier;
using wasm::RunResult;
using wasm::SafepointScheme;
using wasm::TrapKind;
using wasm::Value;

struct JitCase {
  std::string label;
  DispatchMode dispatch = DispatchMode::kThreaded;
  JitTier jit = JitTier::kOff;
  uint32_t threshold = 0;
};

// The comparison matrix: the switch oracle, the JIT-off threaded loop, the
// JIT entered immediately (threshold 0 tiers up at the first OSR seam), and
// the JIT entered mid-run (a warm threshold, so early iterations/calls are
// interpreted and compiled code takes over at a loop back-edge or call).
std::vector<JitCase> Matrix() {
  return {
      {"switch", DispatchMode::kSwitch, JitTier::kOff, 0},
      {"threaded", DispatchMode::kThreaded, JitTier::kOff, 0},
      {"jit0", DispatchMode::kThreaded, JitTier::kOn, 0},
      {"jit-warm", DispatchMode::kThreaded, JitTier::kOn, 13},
  };
}

struct CaseRun {
  std::string label;
  RunResult result;
  uint64_t mem_pages = 0;
  uint64_t tierups = 0;
  uint64_t compiles = 0;
  uint64_t osr_exits = 0;
};

CaseRun RunCase(const std::string& wat, const JitCase& jc,
                const std::string& func, const std::vector<Value>& args,
                ExecOptions base = {}, bool fuse = true) {
  CaseRun out;
  out.label = jc.label + (fuse ? "" : "+unfused");
  wasm_test::WatFixture fx = wasm_test::Instantiate(wat);
  if (fx.instance == nullptr) {
    out.result.trap = TrapKind::kHostError;
    return out;
  }
  if (!fuse) {
    wasm::PrepareOptions popts;
    popts.fuse = false;
    wasm::PrepareModule(*fx.module, popts);
  }
  ExecOptions opts = base;
  opts.dispatch = jc.dispatch;
  opts.jit = jc.jit;
  opts.jit_threshold = jc.threshold;
  out.result = fx.instance->CallExport(func, args, opts);
  auto mem = fx.instance->memory(0);
  if (mem != nullptr) {
    out.mem_pages = mem->size_pages();
  }
  if (fx.module->jit != nullptr) {
    out.tierups = fx.module->jit->tierups.load();
    out.compiles = fx.module->jit->compiles.load();
    out.osr_exits = fx.module->jit->osr_exits.load();
  }
  return out;
}

// Runs the whole matrix (each case in a fresh instance AND fresh module, so
// heat/code never leak between cases) and checks bit-identical agreement.
// Returns the runs for extra per-test assertions.
std::vector<CaseRun> ExpectMatrixAgrees(const std::string& wat,
                                        const std::string& func,
                                        const std::vector<Value>& args,
                                        ExecOptions base = {}) {
  std::vector<CaseRun> runs;
  for (bool fuse : {true, false}) {
    for (const JitCase& jc : Matrix()) {
      runs.push_back(RunCase(wat, jc, func, args, base, fuse));
    }
  }
  const CaseRun& ref = runs.front();
  for (const CaseRun& r : runs) {
    EXPECT_EQ(r.result.trap, ref.result.trap) << r.label;
    EXPECT_EQ(r.result.executed_instrs, ref.result.executed_instrs) << r.label;
    EXPECT_EQ(r.result.values.size(), ref.result.values.size()) << r.label;
    if (r.result.values.size() != ref.result.values.size()) continue;
    for (size_t i = 0; i < r.result.values.size(); ++i) {
      EXPECT_EQ(r.result.values[i].bits, ref.result.values[i].bits)
          << r.label << " value " << i;
    }
    EXPECT_EQ(r.mem_pages, ref.mem_pages) << r.label;
  }
  return runs;
}

// When the tier is built in, the jit0 case of a hot program must actually
// have compiled and entered — otherwise this whole file would vacuously
// pass on a tier that never engages.
void ExpectTierEngaged(const std::vector<CaseRun>& runs) {
  if (!wasm::JitAvailable()) return;
  bool engaged = false;
  for (const CaseRun& r : runs) {
    if (r.label.rfind("jit", 0) == 0 && r.compiles > 0 && r.tierups > 0) {
      engaged = true;
    }
  }
  EXPECT_TRUE(engaged) << "JIT never tiered up on a hot workload";
}

// ---------------------------------------------------------------- programs

// Branch-dense integer compute: shifts/rotates, clz, i32<->i64 width
// changes, xorshift mixing. Exercises most ALU stencils in one hot loop.
const char* kCompute = R"((module
  (func (export "f") (param $n i32) (result i64)
    (local $i i32) (local $a i64) (local $b i32)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $b (i32.xor (local.get $b) (i32.rotl (local.get $i) (i32.const 5))))
      (local.set $b (i32.add (local.get $b) (i32.clz (local.get $i))))
      (local.set $b (i32.sub (local.get $b) (i32.ctz (i32.or (local.get $i) (i32.const 16)))))
      (local.set $a (i64.add (local.get $a) (i64.extend_i32_u (local.get $b))))
      (local.set $a (i64.xor (local.get $a) (i64.shr_u (local.get $a) (i64.const 9))))
      (local.set $a (i64.mul (local.get $a) (i64.const 2654435761)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $a)))
)";

// Call-dense recursion: tier-up heat comes from frame entries (including
// the threaded loop's direct-call fast path), and compiled frames call
// compiled frames natively.
const char* kFib = R"((module
  (func $fib (param $n i32) (result i32)
    (if (result i32) (i32.lt_u (local.get $n) (i32.const 2))
      (then (local.get $n))
      (else (i32.add (call $fib (i32.sub (local.get $n) (i32.const 1)))
                     (call $fib (i32.sub (local.get $n) (i32.const 2)))))))
  (func (export "f") (param $n i32) (result i32) (call $fib (local.get $n))))
)";

// Memory traffic at mixed widths, all in-bounds via masking.
const char* kMemory = R"((module
  (memory 1)
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $h i32)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (i32.store (i32.and (i32.mul (local.get $i) (i32.const 4)) (i32.const 65532))
                 (i32.add (local.get $i) (local.get $h)))
      (local.set $h (i32.xor (local.get $h)
          (i32.load (i32.and (i32.mul (local.get $h) (i32.const 4)) (i32.const 65532)))))
      (i32.store8 (i32.add (i32.const 4096) (i32.and (local.get $i) (i32.const 255)))
                  (local.get $h))
      (local.set $h (i32.add (local.get $h)
          (i32.load8_u (i32.add (i32.const 4096) (i32.and (local.get $h) (i32.const 255))))))
      (local.set $h (i32.add (local.get $h)
          (i32.load16_s (i32.and (local.get $h) (i32.const 65534)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (i32.add (local.get $h) (i32.load (i32.const 0)))))
)";

// br_table in a hot loop: the compiled jump table must land on the same
// targets (including the clamped default) as the interpreter's.
const char* kBrTable = R"((module
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (block $out
        (block $b2
          (block $b1
            (block $b0
              (br_table $b0 $b1 $b2 (i32.and (local.get $i) (i32.const 3))))
            (local.set $acc (i32.add (local.get $acc) (i32.const 7)))
            (br $out))
          (local.set $acc (i32.mul (local.get $acc) (i32.const 3)))
          (br $out))
        (local.set $acc (i32.xor (local.get $acc) (local.get $i))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc)))
)";

// Mutable globals updated every iteration.
const char* kGlobals = R"((module
  (global $g (mut i32) (i32.const 1))
  (global $h (mut i64) (i64.const 7))
  (func (export "f") (param $n i32) (result i64)
    (local $i i32)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (global.set $g (i32.add (global.get $g) (i32.const 3)))
      (global.set $h (i64.add (global.get $h) (i64.extend_i32_u (global.get $g))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (i64.add (global.get $h) (i64.extend_i32_u (global.get $g)))))
)";

// Divides by (m - i): traps kDivByZero at iteration i == m, INSIDE the
// compiled loop, long after tier-up. Also signed-overflow and rem cases.
const char* kDivTrap = R"((module
  (func (export "f") (param $n i32) (param $m i32) (result i32)
    (local $i i32) (local $acc i32)
    (local.set $acc (i32.const 1234567))
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (i32.add (local.get $acc)
          (i32.div_u (local.get $acc) (i32.sub (local.get $m) (local.get $i)))))
      (local.set $acc (i32.add (local.get $acc)
          (i32.rem_s (local.get $acc) (i32.sub (local.get $m) (local.get $i)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc))
  (func (export "overflow") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (local.set $acc (i32.const 1))
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (i32.div_s (i32.const -2147483648)
          (i32.sub (i32.const 30) (i32.sub (local.get $n) (local.get $i)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc)))
)";

// Walks loads up the address space: traps kMemOob mid-loop when i*8 + 8
// crosses the single page.
const char* kOob = R"((module
  (memory 1)
  (func (export "f") (param $n i32) (result i64)
    (local $i i32) (local $a i64)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $a (i64.add (local.get $a) (i64.load (i32.mul (local.get $i) (i32.const 8)))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $a)))
)";

// Indirect dispatch in a hot loop, plus an OOB index past the end.
const char* kIndirect = R"((module
  (type $op (func (param i32) (result i32)))
  (table 3 funcref)
  (func $a (type $op) (i32.add (local.get 0) (i32.const 13)))
  (func $b (type $op) (i32.mul (local.get 0) (i32.const 3)))
  (func $c (type $op) (i32.xor (local.get 0) (i32.const 255)))
  (elem (i32.const 0) $a $b $c)
  (func (export "f") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (call_indirect (type $op)
          (local.get $acc)
          (i32.rem_u (local.get $i) (i32.const 3))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc))
  (func (export "oob") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $acc (call_indirect (type $op)
          (local.get $acc)
          (i32.rem_u (local.get $i) (i32.const 4))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $acc)))
)";

// A hot loop whose body deopts every iteration (f64 ops have no stencils):
// exercises the deopt/reenter seam and, eventually, the deopt blacklist —
// results must stay exact throughout.
const char* kFpDeopt = R"((module
  (func (export "f") (param $n i32) (result i64)
    (local $i i32) (local $x f64) (local $a i64)
    (local.set $x (f64.const 1.5))
    (block $done (loop $l
      (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
      (local.set $x (f64.add (local.get $x) (f64.const 0.25)))
      (local.set $a (i64.add (local.get $a) (i64.reinterpret_f64 (local.get $x))))
      (local.set $a (i64.rotl (local.get $a) (i64.const 7)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $l)))
    (local.get $a)))
)";

// ------------------------------------------------------------------- tests

TEST(WasmJit, AvailabilityIsConsistent) {
  // kAuto/kOn never change observable behavior even when unavailable.
  for (JitTier t : {JitTier::kAuto, JitTier::kOn, JitTier::kOff}) {
    ExecOptions opts;
    opts.jit = t;
    opts.jit_threshold = 0;
    RunResult r = wasm_test::RunWat(kCompute, "f", {Value::I32(100)}, opts);
    EXPECT_EQ(r.trap, TrapKind::kNone) << wasm::JitTierName(t);
  }
}

TEST(WasmJit, ComputeLoopParity) {
  auto runs = ExpectMatrixAgrees(kCompute, "f", {Value::I32(20000)});
  ExpectTierEngaged(runs);
}

TEST(WasmJit, RecursionParity) {
  auto runs = ExpectMatrixAgrees(kFib, "f", {Value::I32(18)});
  ExpectTierEngaged(runs);
}

TEST(WasmJit, MemoryParity) {
  auto runs = ExpectMatrixAgrees(kMemory, "f", {Value::I32(4000)});
  ExpectTierEngaged(runs);
}

TEST(WasmJit, BrTableParity) {
  auto runs = ExpectMatrixAgrees(kBrTable, "f", {Value::I32(4000)});
  ExpectTierEngaged(runs);
}

TEST(WasmJit, GlobalsParity) {
  auto runs = ExpectMatrixAgrees(kGlobals, "f", {Value::I32(4000)});
  ExpectTierEngaged(runs);
}

TEST(WasmJit, IndirectCallParity) {
  auto runs = ExpectMatrixAgrees(kIndirect, "f", {Value::I32(3000)});
  ExpectTierEngaged(runs);
}

TEST(WasmJit, DivTrapInsideCompiledLoop) {
  // Trap fires at iteration 500 of a loop compiled long before: kind,
  // executed count, and the partial state must match the oracle.
  auto runs =
      ExpectMatrixAgrees(kDivTrap, "f", {Value::I32(1000), Value::I32(500)});
  EXPECT_EQ(runs.front().result.trap, TrapKind::kDivByZero);
  ExpectTierEngaged(runs);
  // Signed INT_MIN / -1 overflow, also mid-loop.
  auto ov = ExpectMatrixAgrees(kDivTrap, "overflow", {Value::I32(40)});
  EXPECT_EQ(ov.front().result.trap, TrapKind::kIntOverflow);
}

TEST(WasmJit, OobTrapInsideCompiledLoop) {
  auto runs = ExpectMatrixAgrees(kOob, "f", {Value::I32(10000)});
  EXPECT_EQ(runs.front().result.trap, TrapKind::kMemOutOfBounds);
  ExpectTierEngaged(runs);
}

TEST(WasmJit, IndirectOobTrapParity) {
  auto runs = ExpectMatrixAgrees(kIndirect, "oob", {Value::I32(100)});
  EXPECT_EQ(runs.front().result.trap, TrapKind::kIndirectOob);
}

TEST(WasmJit, FpDeoptLoopParity) {
  // Every iteration deopts at the f64 ops; past kDeoptBlacklist the enter
  // sites stop selecting the code. Exactness must hold the whole way.
  auto runs = ExpectMatrixAgrees(kFpDeopt, "f", {Value::I32(3000)});
  if (wasm::JitAvailable()) {
    bool deopted = false;
    for (const CaseRun& r : runs) {
      if (r.osr_exits > 0) deopted = true;
    }
    EXPECT_TRUE(deopted) << "expected OSR deopt exits from the f64 loop";
  }
}

TEST(WasmJit, FuelSweepAcrossCompiledSegments) {
  // The acceptance bar for fuel: for every limit, a fuel-exhausted run must
  // stop at executed == fuel + 1 with identical partial semantics, even
  // when the boundary lands INSIDE a segment that compiled code charged at
  // its gate. Sweep densely around segment sizes, coarsely elsewhere.
  ExecOptions probe;
  probe.dispatch = DispatchMode::kSwitch;
  RunResult full = wasm_test::RunWat(kCompute, "f", {Value::I32(64)}, probe);
  ASSERT_EQ(full.trap, TrapKind::kNone);
  const uint64_t total = full.executed_instrs;
  ASSERT_GT(total, 100u);
  for (uint64_t fuel = 1; fuel <= total + 1;
       fuel += (fuel < 40 || fuel + 40 > total) ? 1 : 7) {
    ExecOptions base;
    base.fuel = fuel;
    CaseRun oracle =
        RunCase(kCompute, Matrix()[0], "f", {Value::I32(64)}, base);
    CaseRun jit = RunCase(kCompute, Matrix()[2], "f", {Value::I32(64)}, base);
    ASSERT_EQ(jit.result.trap, oracle.result.trap) << "fuel=" << fuel;
    ASSERT_EQ(jit.result.executed_instrs, oracle.result.executed_instrs)
        << "fuel=" << fuel;
    if (oracle.result.trap == TrapKind::kFuelExhausted) {
      ASSERT_EQ(oracle.result.executed_instrs, fuel + 1) << "fuel=" << fuel;
    } else {
      ASSERT_EQ(jit.result.values[0].bits, oracle.result.values[0].bits);
    }
  }
}

TEST(WasmJit, FuelSweepAcrossNativeCalls) {
  // Same sweep over call-dense recursion: boundaries land on frame pushes,
  // returns, and the call instruction itself.
  ExecOptions probe;
  probe.dispatch = DispatchMode::kSwitch;
  RunResult full = wasm_test::RunWat(kFib, "f", {Value::I32(10)}, probe);
  ASSERT_EQ(full.trap, TrapKind::kNone);
  const uint64_t total = full.executed_instrs;
  for (uint64_t fuel = 1; fuel <= total + 1; ++fuel) {
    ExecOptions base;
    base.fuel = fuel;
    CaseRun oracle = RunCase(kFib, Matrix()[0], "f", {Value::I32(10)}, base);
    CaseRun jit = RunCase(kFib, Matrix()[2], "f", {Value::I32(10)}, base);
    ASSERT_EQ(jit.result.trap, oracle.result.trap) << "fuel=" << fuel;
    ASSERT_EQ(jit.result.executed_instrs, oracle.result.executed_instrs)
        << "fuel=" << fuel;
  }
}

TEST(WasmJit, DeepRecursionStackExhaustedParity) {
  const char* wat = R"((module
    (func $down (param $n i32) (result i32)
      (i32.add (i32.const 1)
               (call $down (i32.add (local.get $n) (i32.const 1)))))
    (func (export "f") (result i32) (call $down (i32.const 0)))
  ))";
  auto runs = ExpectMatrixAgrees(wat, "f", {});
  EXPECT_EQ(runs.front().result.trap, TrapKind::kStackExhausted);
}

TEST(WasmJit, SafepointSchemesParity) {
  // kFunction polls at calls (the JIT's native call path must poll there
  // too); kLoop polls at back-edges (the compiled loop-header stencil).
  for (SafepointScheme scheme :
       {SafepointScheme::kLoop, SafepointScheme::kFunction}) {
    ExecOptions base;
    base.scheme = scheme;
    auto runs = ExpectMatrixAgrees(kFib, "f", {Value::I32(15)}, base);
    ExpectTierEngaged(runs);
  }
}

TEST(WasmJit, HostCallDeoptLoopParity) {
  // A host call inside a hot loop exits compiled code every iteration (the
  // call op deopts to the interpreter, which runs CallHost): results and
  // executed counts must stay exact, and the loop must not wedge.
  const char* wat = R"((module
    (import "env" "mix" (func $mix (param i64) (result i64)))
    (func (export "f") (param $n i32) (result i64)
      (local $i i32) (local $a i64)
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $a (i64.add (local.get $a)
            (call $mix (i64.extend_i32_u (local.get $i)))))
        (local.set $a (i64.xor (local.get $a) (i64.shl (local.get $a) (i64.const 5))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $a)))
  )";
  auto with_host = [&](wasm::Linker& linker) {
    wasm::FuncType type;
    type.params = {wasm::ValType::kI64};
    type.results = {wasm::ValType::kI64};
    linker.DefineHostFunc(
        "env", "mix", type,
        [](wasm::ExecContext&, const uint64_t* args, uint64_t* results) {
          results[0] = args[0] * 2654435761u + 99991u;
          return TrapKind::kNone;
        });
  };
  RunResult ref;
  for (const JitCase& jc : Matrix()) {
    wasm_test::WatFixture fx = wasm_test::Instantiate(wat, with_host);
    ASSERT_NE(fx.instance, nullptr);
    ExecOptions opts;
    opts.dispatch = jc.dispatch;
    opts.jit = jc.jit;
    opts.jit_threshold = jc.threshold;
    RunResult r = fx.instance->CallExport("f", {Value::I32(2000)}, opts);
    ASSERT_EQ(r.trap, TrapKind::kNone) << jc.label;
    if (jc.label == "switch") {
      ref = r;
      continue;
    }
    EXPECT_EQ(r.values[0].bits, ref.values[0].bits) << jc.label;
    EXPECT_EQ(r.executed_instrs, ref.executed_instrs) << jc.label;
  }
}

TEST(WasmJit, SuspensionFromCompiledLoopParity) {
  // The host call parks (kSyscallPending) from a loop that tiered up: the
  // suspended-and-resumed run must be bit-identical to a blocking run with
  // the JIT off. This is the snapshot/park interop contract: a parked guest
  // never observes whether its caller was compiled.
  const char* wat = R"((module
    (import "env" "syscall" (func $sc (param i64) (result i64)))
    (func (export "f") (param $n i32) (result i64)
      (local $i i32) (local $a i64)
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $a (i64.add (local.get $a)
            (call $sc (i64.extend_i32_u (local.get $i)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $a)))
  )";
  auto scripted = [](int64_t arg) { return arg * 7 + 3; };

  // Blocking reference, JIT off, switch dispatch.
  auto blocking = wasm_test::Instantiate(wat, [&](wasm::Linker& linker) {
    wasm::FuncType type;
    type.params = {wasm::ValType::kI64};
    type.results = {wasm::ValType::kI64};
    linker.DefineHostFunc(
        "env", "syscall", type,
        [scripted](wasm::ExecContext&, const uint64_t* args,
                   uint64_t* results) {
          results[0] = static_cast<uint64_t>(
              scripted(static_cast<int64_t>(args[0])));
          return TrapKind::kNone;
        });
  });
  ASSERT_NE(blocking.instance, nullptr);
  ExecOptions ref_opts;
  ref_opts.dispatch = DispatchMode::kSwitch;
  ref_opts.jit = JitTier::kOff;
  RunResult want =
      blocking.instance->CallExport("f", {Value::I32(40)}, ref_opts);
  ASSERT_EQ(want.trap, TrapKind::kNone);

  // Suspending run, JIT on with threshold 4: the loop tiers up after a few
  // parks, so later parks unwind from a compiled caller.
  std::vector<int64_t> parked;
  auto suspending = wasm_test::Instantiate(wat, [&](wasm::Linker& linker) {
    wasm::FuncType type;
    type.params = {wasm::ValType::kI64};
    type.results = {wasm::ValType::kI64};
    linker.DefineHostFunc(
        "env", "syscall", type,
        [&parked](wasm::ExecContext& ctx, const uint64_t* args, uint64_t*) {
          parked.push_back(static_cast<int64_t>(args[0]));
          ctx.SetTrap(TrapKind::kSyscallPending, "parked");
          return ctx.trap;
        });
  });
  ASSERT_NE(suspending.instance, nullptr);
  wasm::Suspension susp;
  ExecOptions opts;
  opts.dispatch = DispatchMode::kThreaded;
  opts.jit = JitTier::kOn;
  opts.jit_threshold = 4;
  opts.suspend_to = &susp;
  RunResult got = suspending.instance->CallExport("f", {Value::I32(40)}, opts);
  int parks = 0;
  while (got.trap == TrapKind::kSyscallPending) {
    ASSERT_TRUE(susp.armed());
    ++parks;
    uint64_t bits = static_cast<uint64_t>(scripted(parked.back()));
    got = wasm::ResumeInvoke(susp, &bits, 1);
  }
  EXPECT_EQ(parks, 40);
  ASSERT_EQ(got.trap, TrapKind::kNone) << got.trap_message;
  EXPECT_EQ(got.values[0].bits, want.values[0].bits);
  EXPECT_EQ(got.executed_instrs, want.executed_instrs);
}

TEST(WasmJit, JitOffNeverTiersUp) {
  CaseRun r = RunCase(kCompute, Matrix()[1], "f", {Value::I32(20000)});
  EXPECT_EQ(r.tierups, 0u);
  EXPECT_EQ(r.compiles, 0u);
}

TEST(WasmJit, TierStateSurvivesConcurrentHammering) {
  // Same module, many fresh instances run sequentially: exactly one compile
  // per function (the CAS latch), shared by all runs.
  if (!wasm::JitAvailable()) GTEST_SKIP();
  auto parsed = wasm::ParseAndValidateWat(kCompute);
  ASSERT_TRUE(parsed.ok());
  uint64_t want_bits = 0;
  for (int i = 0; i < 8; ++i) {
    wasm::Linker linker;
    auto inst = linker.Instantiate(*parsed);
    ASSERT_TRUE(inst.ok());
    ExecOptions opts;
    opts.jit = JitTier::kOn;
    opts.jit_threshold = 0;
    RunResult r = (*inst)->CallExport("f", {Value::I32(5000)}, opts);
    ASSERT_EQ(r.trap, TrapKind::kNone);
    if (i == 0) {
      want_bits = r.values[0].bits;
    } else {
      EXPECT_EQ(r.values[0].bits, want_bits);
    }
  }
  ASSERT_NE((*parsed)->jit, nullptr);
  EXPECT_EQ((*parsed)->jit->compiles.load(), 1u);
  EXPECT_GE((*parsed)->jit->tierups.load(), 8u);
}

}  // namespace
