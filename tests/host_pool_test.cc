// Host-layer module cache and instance pool: content-hash dedup, LRU
// eviction, slot recycling, and — critically — the reset-state guarantees a
// recycled slot must give the next tenant (clean exit flags, empty signal
// table, reset mmap pool, re-zeroed and re-initialized linear memory).
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/host/host.h"
#include "tests/wali_test_util.h"

namespace {

// Guest WAT bodies share the common prelude from wali_test_util.h.
std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

struct HostWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<host::ModuleCache> cache;
  std::unique_ptr<host::InstancePool> pool;
};

HostWorld MakeWorld(size_t cache_capacity = 16) {
  HostWorld w;
  w.linker = std::make_unique<wasm::Linker>();
  w.runtime = std::make_unique<wali::WaliRuntime>(w.linker.get());
  w.cache = std::make_unique<host::ModuleCache>(cache_capacity);
  w.pool = std::make_unique<host::InstancePool>(w.runtime.get());
  return w;
}

TEST(ModuleCache, DedupByContentHash) {
  HostWorld w = MakeWorld();
  std::string wat = WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 0))");
  auto a = w.cache->Load(wat);
  auto b = w.cache->Load(wat);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get()) << "same bytes must yield the same module object";
  host::ModuleCache::Stats s = w.cache->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ModuleCache, DistinctContentDistinctModules) {
  HostWorld w = MakeWorld();
  auto a = w.cache->Load(
      WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 1))"));
  auto b = w.cache->Load(
      WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 2))"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(w.cache->stats().misses, 2u);
}

TEST(ModuleCache, AcceptsBinaryWasm) {
  HostWorld w = MakeWorld();
  auto parsed = wasm::ParseAndValidateWat(
      WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 7))"));
  ASSERT_TRUE(parsed.ok());
  std::vector<uint8_t> encoded = wasm::EncodeModule(**parsed);
  std::string bytes(reinterpret_cast<const char*>(encoded.data()), encoded.size());
  auto loaded = w.cache->Load(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto again = w.cache->Load(bytes);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(loaded->get(), again->get());
}

TEST(ModuleCache, RejectsGarbage) {
  HostWorld w = MakeWorld();
  auto r = w.cache->Load("this is not wasm");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(w.cache->stats().entries, 0u);
}

TEST(ModuleCache, LruEviction) {
  HostWorld w = MakeWorld(/*cache_capacity=*/2);
  std::string a = WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 1))");
  std::string b = WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 2))");
  std::string c = WrapModule("(memory 2) (func (export \"main\") (result i32) (i32.const 3))");
  ASSERT_TRUE(w.cache->Load(a).ok());
  ASSERT_TRUE(w.cache->Load(b).ok());
  ASSERT_TRUE(w.cache->Load(a).ok());  // a is now more recently used than b
  ASSERT_TRUE(w.cache->Load(c).ok());  // evicts b
  host::ModuleCache::Stats s = w.cache->stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  ASSERT_TRUE(w.cache->Load(a).ok());  // still cached
  EXPECT_EQ(w.cache->stats().hits, 2u);
}

// Guest that dirties every kind of per-process state the pool must scrub:
// registers a SIGUSR1 handler, mmaps anonymous memory, grows the heap via
// brk, scribbles a marker into linear memory, then exits via exit_group(7)
// (which sets exit_all on the process).
const char* kDirtyGuest = R"(
  (memory 2)
  (table 4 funcref)
  (func $handler (param i32))
  (elem (i32.const 2) $handler)
  (func (export "main") (result i32)
    ;; WaliKSigaction{handler=2, flags=0, mask=0} at 1024
    (i32.store (i32.const 1024) (i32.const 2))
    (i32.store (i32.const 1028) (i32.const 0))
    (i64.store (i32.const 1032) (i64.const 0))
    (drop (call $sigaction (i64.const 10) (i64.const 1024) (i64.const 0) (i64.const 8)))
    ;; mmap(NULL, 8192, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANON, -1, 0)
    (drop (call $mmap (i64.const 0) (i64.const 8192) (i64.const 3)
                      (i64.const 0x22) (i64.const -1) (i64.const 0)))
    ;; dirty a marker word well away from any data segment
    (i32.store (i32.const 4096) (i32.const 0xdeadbeef))
    (drop (call $exit_group (i64.const 7)))
    (i32.const 0))
)";

TEST(InstancePool, RecycledSlotStartsClean) {
  HostWorld w = MakeWorld();
  auto module = w.cache->Load(WrapModule(kDirtyGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  // First run: cold slot, guest dirties everything.
  {
    auto lease = w.pool->Acquire(*module, {"tenant-a"}, {});
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_FALSE(lease->recycled());
    wasm::RunResult r = w.runtime->RunMain(**lease);
    ASSERT_EQ(r.trap, wasm::TrapKind::kExit);
    EXPECT_EQ(r.exit_code, 7);
    wali::WaliProcess& p = **lease;
    EXPECT_TRUE(p.exit_all.load());
    EXPECT_NE(p.sigtable.GetAction(SIGUSR1).handler, wali::kSigDfl);
    EXPECT_GT(p.mmap.bytes_in_use(), 0u);
    EXPECT_GT(p.trace.total_calls(), 0u);
  }  // lease returns the slot to the pool

  // Second run: must be a recycled slot with fully reset state.
  {
    auto lease = w.pool->Acquire(*module, {"tenant-b"}, {});
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_TRUE(lease->recycled());
    wali::WaliProcess& p = **lease;
    EXPECT_FALSE(p.exit_all.load());
    EXPECT_EQ(p.exit_code.load(), 0);
    EXPECT_EQ(p.clear_child_tid.load(), 0u);
    EXPECT_EQ(p.sigtable.GetAction(SIGUSR1).handler, wali::kSigDfl);
    EXPECT_EQ(p.sigtable.virtual_mask(), 0u);
    EXPECT_EQ(p.mmap.bytes_in_use(), 0u);
    EXPECT_EQ(p.trace.total_calls(), 0u);
    EXPECT_EQ(p.policy, nullptr);
    EXPECT_EQ(p.argv[0], "tenant-b");
    // Linear memory: marker word re-zeroed, size back at the declared min.
    ASSERT_NE(p.memory, nullptr);
    EXPECT_EQ(p.memory->size_pages(), 2u);
    uint32_t marker;
    std::memcpy(&marker, p.memory->At(4096), sizeof(marker));
    EXPECT_EQ(marker, 0u) << "previous tenant's write leaked through the reset";
  }

  host::InstancePool::Stats s = w.pool->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.resets, 1u);
}

TEST(InstancePool, RecycledSlotKeepsMemoryBase) {
  HostWorld w = MakeWorld();
  auto module = w.cache->Load(WrapModule(kDirtyGuest));
  ASSERT_TRUE(module.ok());
  uint8_t* base = nullptr;
  {
    auto lease = w.pool->Acquire(*module, {"a"}, {});
    ASSERT_TRUE(lease.ok());
    base = (*lease)->memory->base();
  }
  auto lease = w.pool->Acquire(*module, {"b"}, {});
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease->recycled());
  EXPECT_EQ((*lease)->memory->base(), base)
      << "recycling must reuse the reserved slab, not re-mmap";
}

TEST(InstancePool, DataSegmentsReappliedAfterReset) {
  HostWorld w = MakeWorld();
  // Guest reads its data segment and returns the first byte ('W' = 87); it
  // also overwrites the segment so a missing re-apply would be visible.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (data (i32.const 256) "WALI")
    (func (export "main") (result i32)
      (local $c i32)
      (local.set $c (i32.load8_u (i32.const 256)))
      (i32.store (i32.const 256) (i32.const 0))
      (local.get $c))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  for (int round = 0; round < 3; ++round) {
    auto lease = w.pool->Acquire(*module, {"t"}, {});
    ASSERT_TRUE(lease.ok());
    wasm::RunResult r = w.runtime->RunMain(**lease);
    ASSERT_TRUE(r.ok()) << wasm::TrapKindName(r.trap);
    ASSERT_EQ(r.values.size(), 1u);
    EXPECT_EQ(r.values[0].i32(), 87u) << "round " << round;
  }
  EXPECT_EQ(w.pool->stats().resets, 2u);
}

TEST(InstancePool, HighWaterTracksConcurrentLeases) {
  HostWorld w = MakeWorld();
  auto module = w.cache->Load(WrapModule(kDirtyGuest));
  ASSERT_TRUE(module.ok());
  {
    auto a = w.pool->Acquire(*module, {"a"}, {});
    auto b = w.pool->Acquire(*module, {"b"}, {});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(w.pool->stats().high_water, 2u);
  }
  EXPECT_EQ(w.pool->stats().idle, 2u);
  auto c = w.pool->Acquire(*module, {"c"}, {});
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->recycled());
}

TEST(InstancePool, IdleCapDropsExcessSlots) {
  HostWorld w = MakeWorld();
  host::InstancePool::Options popts;
  popts.max_idle_per_module = 1;
  host::InstancePool pool(w.runtime.get(), popts);
  auto module = w.cache->Load(WrapModule(kDirtyGuest));
  ASSERT_TRUE(module.ok());
  {
    auto a = pool.Acquire(*module, {"a"}, {});
    auto b = pool.Acquire(*module, {"b"}, {});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
  }
  host::InstancePool::Stats s = pool.stats();
  EXPECT_EQ(s.idle, 1u);
  EXPECT_EQ(s.drops, 1u);
}

TEST(InstancePool, LeakedFdsClosedOnRecycle) {
  HostWorld w = MakeWorld();
  std::string path = testing::TempDir() + "/host_pool_fdleak_" +
                     std::to_string(::getpid());
  // Guest opens a file O_WRONLY|O_CREAT and deliberately never closes it.
  auto module = w.cache->Load(WrapModule(
      "(memory 2)\n(data (i32.const 64) \"" + path + "\\00\")\n" + R"(
    (func (export "main") (result i32)
      (if (i64.lt_s (call $open (i64.const 64) (i64.const 0x41) (i64.const 0x1a4))
                    (i64.const 0))
        (then (return (i32.const 1))))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  {
    auto lease = w.pool->Acquire(*module, {"leaky"}, {});
    ASSERT_TRUE(lease.ok());
    wasm::RunResult r = w.runtime->RunMain(**lease);
    ASSERT_TRUE(r.ok_or_exit0()) << wasm::TrapKindName(r.trap);
    ASSERT_EQ(r.values.size(), 1u);
    ASSERT_EQ(r.values[0].i32(), 0u) << "guest failed to open " << path;
    EXPECT_EQ((*lease)->tracked_fd_count(), 1)
        << "dispatch layer must track the minted fd";
  }
  auto lease = w.pool->Acquire(*module, {"next"}, {});
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease->recycled());
  EXPECT_EQ((*lease)->tracked_fd_count(), 0)
      << "previous tenant's leaked fd must be closed on recycle";
  std::remove(path.c_str());
}

TEST(InstancePool, ClosedFdsAreUntracked) {
  HostWorld w = MakeWorld();
  // Guest dups stderr and closes the duplicate: net zero tracked fds.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $fd i64)
      (local.set $fd (call $dup (i64.const 2)))
      (if (i64.lt_s (local.get $fd) (i64.const 0)) (then (return (i32.const 1))))
      (drop (call $close (local.get $fd)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  auto lease = w.pool->Acquire(*module, {"t"}, {});
  ASSERT_TRUE(lease.ok());
  wasm::RunResult r = w.runtime->RunMain(**lease);
  ASSERT_TRUE(r.ok_or_exit0());
  EXPECT_EQ((*lease)->tracked_fd_count(), 0);
}

TEST(SigTableReset, SigIgnRestoredToDefault) {
  // A tenant that SIG_IGNs a signal must not leave the native disposition
  // ignored for the next tenant in the slot.
  {
    wali::SigTable table;
    wali::SigEntry e;
    e.handler = wali::kSigIgn;
    ASSERT_EQ(table.SetAction(SIGUSR2, e, nullptr), 0);
    struct sigaction sa;
    ASSERT_EQ(sigaction(SIGUSR2, nullptr, &sa), 0);
    EXPECT_EQ(sa.sa_handler, SIG_IGN);
    table.Reset();
  }
  struct sigaction sa;
  ASSERT_EQ(sigaction(SIGUSR2, nullptr, &sa), 0);
  EXPECT_EQ(sa.sa_handler, SIG_DFL);
}

// Engine-level reset hook (the primitive the pool builds on).
TEST(MemoryReset, ZeroesAndTruncates) {
  wasm::Limits limits;
  limits.min = 2;
  limits.max = 16;
  limits.has_max = true;
  auto mem = wasm::Memory::Create(limits);
  ASSERT_TRUE(mem.ok());
  ASSERT_GE((*mem)->Grow(6), 0);
  EXPECT_EQ((*mem)->size_pages(), 8u);
  (*mem)->At(100)[0] = 0x5a;
  (*mem)->At(5 * wasm::kWasmPageSize)[0] = 0x5a;
  ASSERT_TRUE((*mem)->ResetToPages(2).ok());
  EXPECT_EQ((*mem)->size_pages(), 2u);
  EXPECT_EQ((*mem)->At(100)[0], 0);
  ASSERT_TRUE((*mem)->ResetToPages(8).ok());
  EXPECT_EQ((*mem)->At(5 * wasm::kWasmPageSize)[0], 0)
      << "re-grown reset pages must read as zero";
  EXPECT_FALSE((*mem)->ResetToPages(17).ok()) << "cannot reset beyond reservation";
}

}  // namespace
