// WALI asynchronous signal pipeline (paper §3.3, Fig. 5): registration via
// rt_sigaction, generation through the kernel, safepoint delivery, Wasm
// handler execution, masks, SIG_IGN, sigreturn prohibition, and safepoint
// scheme behavior (Table 3 semantics).
#include <gtest/gtest.h>

#include <signal.h>

#include <string>

#include "tests/wali_test_util.h"

namespace {

using wali_test::ExpectWaliMain;
using wali_test::RunWali;

// Registers $handler (table slot 2) for SIGUSR1, raises it via kill(self),
// and spin-waits until the handler stores the signo it received.
const char* kCatchUsr1 = R"(
  (memory 2)
  (table 4 funcref)
  (global $got (mut i32) (i32.const 0))
  (func $handler (param i32)
    (global.set $got (local.get 0)))
  (elem (i32.const 2) $handler)
  (func $install (param $signo i64) (result i64)
    ;; WaliKSigaction{handler=2, flags=0, mask=0} at 1024
    (i32.store (i32.const 1024) (i32.const 2))
    (i32.store (i32.const 1028) (i32.const 0))
    (i64.store (i32.const 1032) (i64.const 0))
    (call $sigaction (local.get $signo) (i64.const 1024) (i64.const 0) (i64.const 8)))
  (func (export "main") (result i32)
    (if (i64.ne (call $install (i64.const 10)) (i64.const 0))
      (then (return (i32.const -1))))
    (drop (call $kill (call $getpid) (i64.const 10)))
    (block $done
      (loop $spin
        (br_if $done (i32.ne (global.get $got) (i32.const 0)))
        (br $spin)))
    (global.get $got))
)";

TEST(WaliSignal, AsyncDeliveryAtLoopSafepoint) {
  ExpectWaliMain(kCatchUsr1, SIGUSR1);
}

TEST(WaliSignal, DeliveryCountTracked) {
  auto world = RunWali(kCatchUsr1);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_GE(world.process->sigtable.delivered_count(), 1u);
}

TEST(WaliSignal, EveryInstrSchemeAlsoDelivers) {
  auto world = RunWali(kCatchUsr1, {"test"}, {}, wasm::SafepointScheme::kEveryInstr);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), static_cast<uint32_t>(SIGUSR1));
}

TEST(WaliSignal, NoneSchemeNeverDelivers) {
  // Without safepoints the handler cannot run; guard the loop with fuel via
  // a bounded iteration count instead of spinning forever.
  std::string body = R"(
    (memory 2)
    (table 4 funcref)
    (global $got (mut i32) (i32.const 0))
    (func $handler (param i32) (global.set $got (local.get 0)))
    (elem (i32.const 2) $handler)
    (func (export "main") (result i32)
      (local $i i32)
      (i32.store (i32.const 1024) (i32.const 2))
      (i32.store (i32.const 1028) (i32.const 0))
      (i64.store (i32.const 1032) (i64.const 0))
      (drop (call $sigaction (i64.const 10) (i64.const 1024) (i64.const 0) (i64.const 8)))
      (drop (call $kill (call $getpid) (i64.const 10)))
      (loop $l
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br_if $l (i32.lt_u (local.get $i) (i32.const 100000))))
      (global.get $got))
  )";
  auto world = RunWali(body, {"test"}, {}, wasm::SafepointScheme::kNone);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), 0u);  // never delivered
  EXPECT_TRUE(world.process->sigtable.AnyPending());  // but still pending
}

TEST(WaliSignal, MaskBlocksThenUnblockDelivers) {
  std::string body = R"(
    (memory 2)
    (table 4 funcref)
    (global $got (mut i32) (i32.const 0))
    (func $handler (param i32) (global.set $got (local.get 0)))
    (elem (i32.const 2) $handler)
    (func (export "main") (result i32)
      (local $i i32)
      (i32.store (i32.const 1024) (i32.const 2))
      (i32.store (i32.const 1028) (i32.const 0))
      (i64.store (i32.const 1032) (i64.const 0))
      (drop (call $sigaction (i64.const 10) (i64.const 1024) (i64.const 0) (i64.const 8)))
      ;; block SIGUSR1: mask bit 9 (1<<(10-1)) at addr 2048
      (i64.store (i32.const 2048) (i64.const 0x200))
      (drop (call $sigprocmask (i64.const 0) (i64.const 2048) (i64.const 0) (i64.const 8)))
      (drop (call $kill (call $getpid) (i64.const 10)))
      ;; run a bounded loop: the handler must NOT fire while masked
      (loop $l
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br_if $l (i32.lt_u (local.get $i) (i32.const 50000))))
      (if (i32.ne (global.get $got) (i32.const 0)) (then (return (i32.const 100))))
      ;; unblock (SIG_UNBLOCK=1) and wait for delivery
      (drop (call $sigprocmask (i64.const 1) (i64.const 2048) (i64.const 0) (i64.const 8)))
      (block $done
        (loop $spin
          (br_if $done (i32.ne (global.get $got) (i32.const 0)))
          (br $spin)))
      (global.get $got))
  )";
  ExpectWaliMain(body, SIGUSR1);
}

TEST(WaliSignal, SigIgnDropsSignal) {
  std::string body = R"(
    (memory 2)
    (table 4 funcref)
    (func (export "main") (result i32)
      (local $i i32)
      ;; SIG_IGN = handler value 1
      (i32.store (i32.const 1024) (i32.const 1))
      (i32.store (i32.const 1028) (i32.const 0))
      (i64.store (i32.const 1032) (i64.const 0))
      (drop (call $sigaction (i64.const 10) (i64.const 1024) (i64.const 0) (i64.const 8)))
      (drop (call $kill (call $getpid) (i64.const 10)))
      (loop $l
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br_if $l (i32.lt_u (local.get $i) (i32.const 10000))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliSignal, OldActionReturned) {
  std::string body = R"(
    (memory 2)
    (table 4 funcref)
    (func $h1 (param i32))
    (func $h2 (param i32))
    (elem (i32.const 2) $h1 $h2)
    (func $set (param $h i64) (result i64)
      (i32.store (i32.const 1024) (i32.wrap_i64 (local.get $h)))
      (i32.store (i32.const 1028) (i32.const 0))
      (i64.store (i32.const 1032) (i64.const 0))
      (call $sigaction (i64.const 10) (i64.const 1024) (i64.const 2048) (i64.const 8)))
    (func (export "main") (result i32)
      (drop (call $set (i64.const 2)))
      ;; installing h2 must return old handler h1 (=2) via oldact
      (drop (call $set (i64.const 3)))
      (i32.load (i32.const 2048)))
  )";
  ExpectWaliMain(body, 2);
}

TEST(WaliSignal, SigreturnTraps) {
  std::string body = R"(
    (import "wali" "SYS_rt_sigreturn" (func $sigreturn (result i64)))
    (memory 1)
    (func (export "main") (result i32)
      (drop (call $sigreturn))
      (i32.const 0))
  )";
  auto world = RunWali(body);
  EXPECT_EQ(world.result.trap, wasm::TrapKind::kHostError);
}

TEST(WaliSignal, KillSigkillToSelfIsRejectedForTable) {
  // rt_sigaction(SIGKILL, ...) must fail with -EINVAL like the kernel.
  std::string body = R"(
    (memory 2)
    (table 4 funcref)
    (func $handler (param i32))
    (elem (i32.const 2) $handler)
    (func (export "main") (result i32)
      (i32.store (i32.const 1024) (i32.const 2))
      (i32.store (i32.const 1028) (i32.const 0))
      (i64.store (i32.const 1032) (i64.const 0))
      (i32.wrap_i64
        (i64.sub (i64.const 0)
          (call $sigaction (i64.const 9) (i64.const 1024) (i64.const 0) (i64.const 8)))))
  )";
  ExpectWaliMain(body, EINVAL);
}

TEST(WaliSignal, HandlerRunsDuringBlockingNanosleep) {
  // SA_RESTART keeps nanosleep going; after it completes the safepoint at
  // the return loop delivers the handler. Uses a short self-directed timer
  // via a cloned thread that kills the process after ~10ms.
  std::string body = R"(
    (memory 2 4 shared)
    (table 4 funcref)
    (global $got (mut i32) (i32.const 0))
    (func $handler (param i32) (global.set $got (i32.const 55)))
    (func $pinger (param i32) (result i32)
      ;; sleep 10ms then signal the process
      (i64.store (i32.const 3072) (i64.const 0))
      (i64.store (i32.const 3080) (i64.const 10000000))
      (drop (call $nanosleep (i64.const 3072) (i64.const 0)))
      (drop (call $kill (call $getpid) (i64.const 10)))
      (i32.const 0))
    (elem (i32.const 2) $handler $pinger)
    (func (export "main") (result i32)
      (i32.store (i32.const 1024) (i32.const 2))
      (i32.store (i32.const 1028) (i32.const 0))
      (i64.store (i32.const 1032) (i64.const 0))
      (drop (call $sigaction (i64.const 10) (i64.const 1024) (i64.const 0) (i64.const 8)))
      (if (i64.lt_s (call $clone (i64.const 0x100) (i64.const 3) (i64.const 0)
                          (i64.const 0) (i64.const 0))
                    (i64.const 0))
        (then (return (i32.const 1))))
      (block $done
        (loop $spin
          (br_if $done (i32.ne (global.get $got) (i32.const 0)))
          (drop (call $sched_yield))
          (br $spin)))
      (global.get $got))
  )";
  ExpectWaliMain(body, 55);
}

}  // namespace
