// Numeric instruction semantics: arithmetic, comparisons, conversions,
// trapping edge cases. Parameterized sweeps cover the edge values the spec
// calls out (division overflow, float->int range, shift masking).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "tests/wat_test_util.h"

namespace {

using wasm::TrapKind;
using wasm::Value;
using wasm_test::ExpectI32;
using wasm_test::ExpectI64;
using wasm_test::ExpectTrap;
using wasm_test::RunWat;

const char* kBinI32 = R"((module
  (func (export "add") (param i32 i32) (result i32) (i32.add (local.get 0) (local.get 1)))
  (func (export "sub") (param i32 i32) (result i32) (i32.sub (local.get 0) (local.get 1)))
  (func (export "mul") (param i32 i32) (result i32) (i32.mul (local.get 0) (local.get 1)))
  (func (export "div_s") (param i32 i32) (result i32) (i32.div_s (local.get 0) (local.get 1)))
  (func (export "div_u") (param i32 i32) (result i32) (i32.div_u (local.get 0) (local.get 1)))
  (func (export "rem_s") (param i32 i32) (result i32) (i32.rem_s (local.get 0) (local.get 1)))
  (func (export "rem_u") (param i32 i32) (result i32) (i32.rem_u (local.get 0) (local.get 1)))
  (func (export "and") (param i32 i32) (result i32) (i32.and (local.get 0) (local.get 1)))
  (func (export "or") (param i32 i32) (result i32) (i32.or (local.get 0) (local.get 1)))
  (func (export "xor") (param i32 i32) (result i32) (i32.xor (local.get 0) (local.get 1)))
  (func (export "shl") (param i32 i32) (result i32) (i32.shl (local.get 0) (local.get 1)))
  (func (export "shr_s") (param i32 i32) (result i32) (i32.shr_s (local.get 0) (local.get 1)))
  (func (export "shr_u") (param i32 i32) (result i32) (i32.shr_u (local.get 0) (local.get 1)))
  (func (export "rotl") (param i32 i32) (result i32) (i32.rotl (local.get 0) (local.get 1)))
  (func (export "rotr") (param i32 i32) (result i32) (i32.rotr (local.get 0) (local.get 1)))
))";

TEST(NumericI32, BasicArithmetic) {
  ExpectI32(kBinI32, "add", {Value::I32(2), Value::I32(3)}, 5);
  ExpectI32(kBinI32, "add", {Value::I32(0xFFFFFFFF), Value::I32(1)}, 0);  // wraps
  ExpectI32(kBinI32, "sub", {Value::I32(3), Value::I32(5)}, 0xFFFFFFFE);
  ExpectI32(kBinI32, "mul", {Value::I32(0x10000), Value::I32(0x10000)}, 0);
  ExpectI32(kBinI32, "div_s", {Value::I32(static_cast<uint32_t>(-7)), Value::I32(2)},
            static_cast<uint32_t>(-3));
  ExpectI32(kBinI32, "div_u", {Value::I32(static_cast<uint32_t>(-7)), Value::I32(2)},
            0x7FFFFFFC);
  ExpectI32(kBinI32, "rem_s", {Value::I32(static_cast<uint32_t>(-7)), Value::I32(2)},
            static_cast<uint32_t>(-1));
  ExpectI32(kBinI32, "rem_u", {Value::I32(7), Value::I32(2)}, 1);
}

TEST(NumericI32, DivisionTraps) {
  ExpectTrap(kBinI32, "div_s", {Value::I32(1), Value::I32(0)}, TrapKind::kDivByZero);
  ExpectTrap(kBinI32, "div_u", {Value::I32(1), Value::I32(0)}, TrapKind::kDivByZero);
  ExpectTrap(kBinI32, "rem_s", {Value::I32(1), Value::I32(0)}, TrapKind::kDivByZero);
  ExpectTrap(kBinI32, "rem_u", {Value::I32(1), Value::I32(0)}, TrapKind::kDivByZero);
  ExpectTrap(kBinI32, "div_s", {Value::I32(0x80000000), Value::I32(0xFFFFFFFF)},
             TrapKind::kIntOverflow);
  // INT_MIN % -1 == 0, not a trap.
  ExpectI32(kBinI32, "rem_s", {Value::I32(0x80000000), Value::I32(0xFFFFFFFF)}, 0);
}

TEST(NumericI32, ShiftsMaskCount) {
  ExpectI32(kBinI32, "shl", {Value::I32(1), Value::I32(33)}, 2);  // count & 31
  ExpectI32(kBinI32, "shr_u", {Value::I32(0x80000000), Value::I32(31)}, 1);
  ExpectI32(kBinI32, "shr_s", {Value::I32(0x80000000), Value::I32(31)}, 0xFFFFFFFF);
  ExpectI32(kBinI32, "rotl", {Value::I32(0x80000001), Value::I32(1)}, 3);
  ExpectI32(kBinI32, "rotr", {Value::I32(3), Value::I32(1)}, 0x80000001);
  ExpectI32(kBinI32, "rotl", {Value::I32(0xABCD1234), Value::I32(32)}, 0xABCD1234);
}

TEST(NumericI32, CountingOps) {
  const char* wat = R"((module
    (func (export "clz") (param i32) (result i32) (i32.clz (local.get 0)))
    (func (export "ctz") (param i32) (result i32) (i32.ctz (local.get 0)))
    (func (export "popcnt") (param i32) (result i32) (i32.popcnt (local.get 0)))
    (func (export "eqz") (param i32) (result i32) (i32.eqz (local.get 0)))
  ))";
  ExpectI32(wat, "clz", {Value::I32(0)}, 32);
  ExpectI32(wat, "clz", {Value::I32(1)}, 31);
  ExpectI32(wat, "clz", {Value::I32(0x80000000)}, 0);
  ExpectI32(wat, "ctz", {Value::I32(0)}, 32);
  ExpectI32(wat, "ctz", {Value::I32(0x80000000)}, 31);
  ExpectI32(wat, "popcnt", {Value::I32(0xF0F0F0F0)}, 16);
  ExpectI32(wat, "eqz", {Value::I32(0)}, 1);
  ExpectI32(wat, "eqz", {Value::I32(7)}, 0);
}

TEST(NumericI64, Basics) {
  const char* wat = R"((module
    (func (export "add") (param i64 i64) (result i64) (i64.add (local.get 0) (local.get 1)))
    (func (export "mul") (param i64 i64) (result i64) (i64.mul (local.get 0) (local.get 1)))
    (func (export "div_s") (param i64 i64) (result i64) (i64.div_s (local.get 0) (local.get 1)))
    (func (export "shr_s") (param i64 i64) (result i64) (i64.shr_s (local.get 0) (local.get 1)))
    (func (export "clz") (param i64) (result i64) (i64.clz (local.get 0)))
    (func (export "lt_s") (param i64 i64) (result i32) (i64.lt_s (local.get 0) (local.get 1)))
  ))";
  ExpectI64(wat, "add", {Value::I64(0xFFFFFFFFFFFFFFFFull), Value::I64(1)}, 0);
  ExpectI64(wat, "mul", {Value::I64(1ull << 32), Value::I64(1ull << 32)}, 0);
  ExpectI64(wat, "div_s", {Value::I64(static_cast<uint64_t>(-100)), Value::I64(7)},
            static_cast<uint64_t>(-14));
  ExpectI64(wat, "shr_s", {Value::I64(0x8000000000000000ull), Value::I64(63)},
            0xFFFFFFFFFFFFFFFFull);
  ExpectI64(wat, "clz", {Value::I64(0)}, 64);
  ExpectI32(wat, "lt_s", {Value::I64(static_cast<uint64_t>(-1)), Value::I64(0)}, 1);
  ExpectTrap(wat, "div_s", {Value::I64(0x8000000000000000ull),
                            Value::I64(0xFFFFFFFFFFFFFFFFull)},
             TrapKind::kIntOverflow);
}

TEST(NumericFloat, ArithmeticAndSpecials) {
  const char* wat = R"((module
    (func (export "fadd") (param f64 f64) (result f64) (f64.add (local.get 0) (local.get 1)))
    (func (export "fdiv") (param f64 f64) (result f64) (f64.div (local.get 0) (local.get 1)))
    (func (export "fmin") (param f64 f64) (result f64) (f64.min (local.get 0) (local.get 1)))
    (func (export "fmax") (param f64 f64) (result f64) (f64.max (local.get 0) (local.get 1)))
    (func (export "fsqrt") (param f64) (result f64) (f64.sqrt (local.get 0)))
    (func (export "fnearest") (param f64) (result f64) (f64.nearest (local.get 0)))
    (func (export "ffloor") (param f64) (result f64) (f64.floor (local.get 0)))
  ))";
  auto run1 = [&](const char* fn, double a) {
    auto r = RunWat(wat, fn, {Value::F64(a)});
    EXPECT_EQ(r.trap, TrapKind::kNone);
    return r.values[0].f64();
  };
  auto run2 = [&](const char* fn, double a, double b) {
    auto r = RunWat(wat, fn, {Value::F64(a), Value::F64(b)});
    EXPECT_EQ(r.trap, TrapKind::kNone);
    return r.values[0].f64();
  };
  EXPECT_DOUBLE_EQ(run2("fadd", 1.5, 2.25), 3.75);
  EXPECT_TRUE(std::isinf(run2("fdiv", 1.0, 0.0)));
  EXPECT_TRUE(std::isnan(run2("fdiv", 0.0, 0.0)));
  EXPECT_TRUE(std::isnan(run2("fmin", NAN, 1.0)));
  EXPECT_DOUBLE_EQ(run2("fmin", -0.0, 0.0), -0.0);
  EXPECT_TRUE(std::signbit(run2("fmin", -0.0, 0.0)));
  EXPECT_FALSE(std::signbit(run2("fmax", -0.0, 0.0)));
  EXPECT_DOUBLE_EQ(run1("fsqrt", 9.0), 3.0);
  EXPECT_DOUBLE_EQ(run1("fnearest", 2.5), 2.0);  // round-to-even
  EXPECT_DOUBLE_EQ(run1("fnearest", 3.5), 4.0);
  EXPECT_DOUBLE_EQ(run1("ffloor", -0.5), -1.0);
}

TEST(NumericConvert, TruncTrapsAndSat) {
  const char* wat = R"((module
    (func (export "trunc") (param f64) (result i32) (i32.trunc_f64_s (local.get 0)))
    (func (export "trunc_u") (param f64) (result i32) (i32.trunc_f64_u (local.get 0)))
    (func (export "sat") (param f64) (result i32) (i32.trunc_sat_f64_s (local.get 0)))
    (func (export "sat_u") (param f64) (result i32) (i32.trunc_sat_f64_u (local.get 0)))
    (func (export "sat64") (param f64) (result i64) (i64.trunc_sat_f64_s (local.get 0)))
  ))";
  ExpectI32(wat, "trunc", {Value::F64(-3.99)}, static_cast<uint32_t>(-3));
  ExpectTrap(wat, "trunc", {Value::F64(NAN)}, TrapKind::kInvalidConversion);
  ExpectTrap(wat, "trunc", {Value::F64(2147483648.0)}, TrapKind::kIntOverflow);
  ExpectTrap(wat, "trunc_u", {Value::F64(-1.0)}, TrapKind::kIntOverflow);
  ExpectI32(wat, "trunc_u", {Value::F64(4294967295.0)}, 0xFFFFFFFF);
  ExpectI32(wat, "sat", {Value::F64(NAN)}, 0);
  ExpectI32(wat, "sat", {Value::F64(1e300)}, 0x7FFFFFFF);
  ExpectI32(wat, "sat", {Value::F64(-1e300)}, 0x80000000);
  ExpectI32(wat, "sat_u", {Value::F64(-5.0)}, 0);
  ExpectI32(wat, "sat_u", {Value::F64(1e300)}, 0xFFFFFFFF);
  ExpectI64(wat, "sat64", {Value::F64(1e300)}, 0x7FFFFFFFFFFFFFFFull);
}

TEST(NumericConvert, ExtendWrapReinterpret) {
  const char* wat = R"((module
    (func (export "wrap") (param i64) (result i32) (i32.wrap_i64 (local.get 0)))
    (func (export "ext_s") (param i32) (result i64) (i64.extend_i32_s (local.get 0)))
    (func (export "ext_u") (param i32) (result i64) (i64.extend_i32_u (local.get 0)))
    (func (export "ext8") (param i32) (result i32) (i32.extend8_s (local.get 0)))
    (func (export "ext16_64") (param i64) (result i64) (i64.extend16_s (local.get 0)))
    (func (export "reint") (param f64) (result i64) (i64.reinterpret_f64 (local.get 0)))
    (func (export "reint2") (param i32) (result f32) (f32.reinterpret_i32 (local.get 0)))
  ))";
  ExpectI32(wat, "wrap", {Value::I64(0x1234567890ABCDEFull)}, 0x90ABCDEF);
  ExpectI64(wat, "ext_s", {Value::I32(0xFFFFFFFF)}, 0xFFFFFFFFFFFFFFFFull);
  ExpectI64(wat, "ext_u", {Value::I32(0xFFFFFFFF)}, 0xFFFFFFFFull);
  ExpectI32(wat, "ext8", {Value::I32(0x80)}, 0xFFFFFF80);
  ExpectI64(wat, "ext16_64", {Value::I64(0x8000)}, 0xFFFFFFFFFFFF8000ull);
  auto r = RunWat(wat, "reint", {Value::F64(1.0)});
  EXPECT_EQ(r.values[0].i64(), 0x3FF0000000000000ull);
  auto r2 = RunWat(wat, "reint2", {Value::I32(0x3F800000)});
  EXPECT_FLOAT_EQ(r2.values[0].f32(), 1.0f);
}

TEST(NumericConvert, IntToFloat) {
  const char* wat = R"((module
    (func (export "c1") (param i32) (result f64) (f64.convert_i32_s (local.get 0)))
    (func (export "c2") (param i32) (result f64) (f64.convert_i32_u (local.get 0)))
    (func (export "c3") (param i64) (result f32) (f32.convert_i64_s (local.get 0)))
    (func (export "c4") (param i64) (result f64) (f64.convert_i64_u (local.get 0)))
    (func (export "promote") (param f32) (result f64) (f64.promote_f32 (local.get 0)))
    (func (export "demote") (param f64) (result f32) (f32.demote_f64 (local.get 0)))
  ))";
  auto r1 = RunWat(wat, "c1", {Value::I32(static_cast<uint32_t>(-5))});
  EXPECT_DOUBLE_EQ(r1.values[0].f64(), -5.0);
  auto r2 = RunWat(wat, "c2", {Value::I32(0xFFFFFFFF)});
  EXPECT_DOUBLE_EQ(r2.values[0].f64(), 4294967295.0);
  auto r3 = RunWat(wat, "c3", {Value::I64(static_cast<uint64_t>(-1) << 40)});
  EXPECT_FLOAT_EQ(r3.values[0].f32(), -1099511627776.0f);
  auto r4 = RunWat(wat, "c4", {Value::I64(0xFFFFFFFFFFFFFFFFull)});
  EXPECT_DOUBLE_EQ(r4.values[0].f64(), 18446744073709551616.0);
  auto r5 = RunWat(wat, "promote", {Value::F32(1.5f)});
  EXPECT_DOUBLE_EQ(r5.values[0].f64(), 1.5);
  auto r6 = RunWat(wat, "demote", {Value::F64(1.5)});
  EXPECT_FLOAT_EQ(r6.values[0].f32(), 1.5f);
}

// Parameterized sweep: i32.div_s quotient semantics (truncation toward zero)
// across sign combinations.
struct DivCase {
  int32_t a, b, want;
};

class DivSweep : public ::testing::TestWithParam<DivCase> {};

TEST_P(DivSweep, TruncatesTowardZero) {
  DivCase c = GetParam();
  ExpectI32(kBinI32, "div_s",
            {Value::I32(static_cast<uint32_t>(c.a)), Value::I32(static_cast<uint32_t>(c.b))},
            static_cast<uint32_t>(c.want));
}

INSTANTIATE_TEST_SUITE_P(SignCombos, DivSweep,
                         ::testing::Values(DivCase{7, 2, 3}, DivCase{-7, 2, -3},
                                           DivCase{7, -2, -3}, DivCase{-7, -2, 3},
                                           DivCase{0, 5, 0}, DivCase{1, 1, 1},
                                           DivCase{INT32_MAX, 1, INT32_MAX},
                                           DivCase{INT32_MIN, 1, INT32_MIN},
                                           DivCase{INT32_MIN, 2, INT32_MIN / 2}));

}  // namespace
