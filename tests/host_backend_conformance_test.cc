// Backend conformance suite: every IoBackend implementation must honor the
// same completion contract, because the supervisor cannot know which one is
// behind the seam. Typed over IoReactor (poll loop), FakeIoBackend (manual
// clock + scripted readiness), and IoUringBackend (skipped — never failed —
// on kernels/builds without io_uring).
//
// The contract under test:
//   - sleeps and op timeouts complete kTimedOut, in deadline order;
//   - fd error states (POLLERR/POLLHUP/POLLNVAL and their ring analogues)
//     complete kReady with no value — the RETRY surfaces the kernel's own
//     answer (EOF, EPIPE, EBADF, ...), the backend never invents one;
//   - dual-interest kPollSet members wake on EITHER readiness;
//   - negative fds in a kPollSet are placeholders (poll(2) semantics);
//   - Cancel vs. complete has exactly one winner per cookie: true means the
//     completion will never arrive, false means it already did (or will
//     imminently) and the caller absorbs the orphan.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <sys/socket.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/host/io_reactor.h"
#include "src/host/io_uring_backend.h"

namespace {

constexpr int64_t kMs = 1000000;

// Thread-safe completion capture: real backends deliver from their loop
// thread, the fake delivers synchronously on the test thread; both land
// here. Install BEFORE the first Submit (the IoBackend contract).
struct Capture {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::pair<uint64_t, host::IoCompletion>> got;

  void Install(host::IoBackend* backend) {
    backend->SetCompletionHandler(
        [this](uint64_t cookie, const host::IoCompletion& c) {
          std::lock_guard<std::mutex> lock(mu);
          got.emplace_back(cookie, c);
          cv.notify_all();
        });
  }

  bool WaitFor(size_t n, int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return got.size() >= n; });
  }

  size_t CountFor(uint64_t cookie) {
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const auto& e : got) {
      if (e.first == cookie) ++n;
    }
    return n;
  }
};

// Per-backend driver. `manual()` backends (the fake) need the test to move
// the clock and to script fd readiness; kernel-clocked backends just need
// wall time to pass.
struct PollReactorDriver {
  static const char* Name() { return "IoReactor"; }
  static bool Available() { return true; }
  static std::unique_ptr<host::IoBackend> Make() {
    return std::make_unique<host::IoReactor>();
  }
  static bool manual() { return false; }
  static void Settle(host::IoBackend*, int64_t) {}
  static void ScriptReady(host::IoBackend*, uint64_t) {}
};

struct FakeBackendDriver {
  static const char* Name() { return "FakeIoBackend"; }
  static bool Available() { return true; }
  static std::unique_ptr<host::IoBackend> Make() {
    return std::make_unique<host::FakeIoBackend>();
  }
  static bool manual() { return true; }
  static void Settle(host::IoBackend* b, int64_t nanos) {
    static_cast<host::FakeIoBackend*>(b)->AdvanceBy(nanos);
  }
  static void ScriptReady(host::IoBackend* b, uint64_t cookie) {
    static_cast<host::FakeIoBackend*>(b)->CompleteReady(cookie);
  }
};

struct IoUringDriver {
  static const char* Name() { return "IoUringBackend"; }
  static bool Available() { return host::IoUringAvailable(); }
  static std::unique_ptr<host::IoBackend> Make() {
    return std::make_unique<host::IoUringBackend>();
  }
  static bool manual() { return false; }
  static void Settle(host::IoBackend*, int64_t) {}
  static void ScriptReady(host::IoBackend*, uint64_t) {}
};

template <typename Driver>
class BackendConformance : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Driver::Available()) {
      GTEST_SKIP() << Driver::Name()
                   << " unavailable on this kernel/build; skipping (never "
                      "failing) per the conformance contract";
    }
    backend_ = Driver::Make();
    cap_.Install(backend_.get());
  }

  void TearDown() override {
    if (backend_ != nullptr) backend_->SetCompletionHandler(nullptr);
  }

  std::unique_ptr<host::IoBackend> backend_;
  Capture cap_;
};

using Drivers =
    ::testing::Types<PollReactorDriver, FakeBackendDriver, IoUringDriver>;
TYPED_TEST_SUITE(BackendConformance, Drivers);

TYPED_TEST(BackendConformance, SleepCompletesTimedOut) {
  this->backend_->Submit(1, wali::IoOp::Sleep(5 * kMs));
  TypeParam::Settle(this->backend_.get(), 5 * kMs);
  ASSERT_TRUE(this->cap_.WaitFor(1));
  EXPECT_EQ(this->cap_.got[0].first, 1u);
  EXPECT_EQ(this->cap_.got[0].second.status,
            host::IoCompletion::Status::kTimedOut);
  EXPECT_FALSE(this->cap_.got[0].second.has_value)
      << "timeouts carry no scripted value; the retry decides the result";
  EXPECT_EQ(this->backend_->pending(), 0u);
}

TYPED_TEST(BackendConformance, TimeoutsCompleteInDeadlineOrder) {
  this->backend_->Submit(2, wali::IoOp::Sleep(20 * kMs));
  this->backend_->Submit(1, wali::IoOp::Sleep(5 * kMs));
  TypeParam::Settle(this->backend_.get(), 20 * kMs);
  ASSERT_TRUE(this->cap_.WaitFor(2));
  EXPECT_EQ(this->cap_.got[0].first, 1u) << "earlier deadline first";
  EXPECT_EQ(this->cap_.got[1].first, 2u);
}

TYPED_TEST(BackendConformance, ReadTimeoutCompletesTimedOut) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Empty pipe, never written: only the op's own timeout can fire.
  this->backend_->Submit(7, wali::IoOp::Readable(fds[0], 10 * kMs));
  TypeParam::Settle(this->backend_.get(), 10 * kMs);
  ASSERT_TRUE(this->cap_.WaitFor(1));
  EXPECT_EQ(this->cap_.got[0].second.status,
            host::IoCompletion::Status::kTimedOut);
  close(fds[0]);
  close(fds[1]);
}

TYPED_TEST(BackendConformance, HangupCompletesReadyAndRetrySeesKernelTruth) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[1]);  // reader watches a pipe whose write end is gone: POLLHUP
  this->backend_->Submit(3, wali::IoOp::Readable(fds[0]));
  TypeParam::ScriptReady(this->backend_.get(), 3);
  ASSERT_TRUE(this->cap_.WaitFor(1));
  EXPECT_EQ(this->cap_.got[0].second.status,
            host::IoCompletion::Status::kReady)
      << "error states complete kReady; they never invent a result";
  EXPECT_FALSE(this->cap_.got[0].second.has_value);
  // The retry's re-issued syscall is where the kernel's answer surfaces.
  char byte;
  EXPECT_EQ(read(fds[0], &byte, 1), 0) << "EOF is the kernel truth here";
  close(fds[0]);
}

TYPED_TEST(BackendConformance, ClosedFdCompletesReadyNotStuck) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[1]);
  close(fds[0]);  // the fd is dead before submit: POLLNVAL / -EBADF class
  this->backend_->Submit(4, wali::IoOp::Readable(fds[0]));
  TypeParam::ScriptReady(this->backend_.get(), 4);
  ASSERT_TRUE(this->cap_.WaitFor(1))
      << "a dead fd must complete promptly, never park forever";
  EXPECT_EQ(this->cap_.got[0].second.status,
            host::IoCompletion::Status::kReady);
}

TYPED_TEST(BackendConformance, DualInterestPollSetWakesOnWritable) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Nothing to read, but the socket is writable: a POLLIN|POLLOUT member
  // must wake on the union of interests (the PR-9 dual-interest fix).
  std::vector<wali::IoOp::PollFd> set = {{sv[0], POLLIN | POLLOUT}};
  this->backend_->Submit(5, wali::IoOp::PollSet(std::move(set), 1000 * kMs));
  TypeParam::ScriptReady(this->backend_.get(), 5);
  ASSERT_TRUE(this->cap_.WaitFor(1))
      << "writable-only readiness must complete a dual-interest member";
  EXPECT_EQ(this->cap_.got[0].second.status,
            host::IoCompletion::Status::kReady);
  close(sv[0]);
  close(sv[1]);
}

TYPED_TEST(BackendConformance, PollSetSkipsNegativeFdsAndTimesOut) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // poll(2) semantics: negative fds are placeholders. With the only real
  // member an empty pipe, the set is timer-driven.
  std::vector<wali::IoOp::PollFd> set = {
      {-1, POLLIN}, {fds[0], POLLIN}, {-1, POLLOUT}};
  this->backend_->Submit(6, wali::IoOp::PollSet(std::move(set), 10 * kMs));
  TypeParam::Settle(this->backend_.get(), 10 * kMs);
  ASSERT_TRUE(this->cap_.WaitFor(1));
  EXPECT_EQ(this->cap_.got[0].second.status,
            host::IoCompletion::Status::kTimedOut);
  close(fds[0]);
  close(fds[1]);
}

TYPED_TEST(BackendConformance, CancelledOpNeverCompletes) {
  this->backend_->Submit(8, wali::IoOp::Sleep(5 * kMs));
  EXPECT_TRUE(this->backend_->Cancel(8))
      << "an undelivered op must cancel cleanly";
  EXPECT_EQ(this->backend_->pending(), 0u);
  // Give the completion every chance to (wrongly) fire.
  this->backend_->Submit(9, wali::IoOp::Sleep(10 * kMs));
  TypeParam::Settle(this->backend_.get(), 10 * kMs);
  ASSERT_TRUE(this->cap_.WaitFor(1));
  EXPECT_EQ(this->cap_.CountFor(8), 0u) << "Cancel()==true means NEVER";
  EXPECT_EQ(this->cap_.CountFor(9), 1u);
}

TYPED_TEST(BackendConformance, CancelUnknownCookieReturnsFalse) {
  EXPECT_FALSE(this->backend_->Cancel(12345))
      << "unknown cookie: the completion was already delivered (or never "
         "submitted); the caller absorbs the orphan";
}

TYPED_TEST(BackendConformance, CancelVsCompleteExactlyOneWinner) {
  // Race Cancel against near-immediate completions. The invariant: per
  // cookie, Cancel()==true XOR a completion was delivered — never both,
  // never neither.
  constexpr uint64_t kRounds = 200;
  uint64_t cancelled = 0;
  for (uint64_t i = 0; i < kRounds; ++i) {
    const uint64_t cookie = 100 + i;
    this->backend_->Submit(cookie, wali::IoOp::Sleep(0));
    TypeParam::Settle(this->backend_.get(), 0);
    if (this->backend_->Cancel(cookie)) ++cancelled;
  }
  // Drain: one more op whose completion bounds the in-flight window.
  this->backend_->Submit(99, wali::IoOp::Sleep(kMs));
  TypeParam::Settle(this->backend_.get(), kMs);
  ASSERT_TRUE(this->cap_.WaitFor(1));  // at least the sentinel arrived
  ASSERT_TRUE(this->cap_.WaitFor(kRounds - cancelled + 1))
      << "every non-cancelled op must deliver exactly once";
  uint64_t delivered = 0;
  for (uint64_t i = 0; i < kRounds; ++i) {
    const size_t n = this->cap_.CountFor(100 + i);
    ASSERT_LE(n, 1u) << "cookie " << 100 + i << " delivered twice";
    delivered += n;
  }
  EXPECT_EQ(cancelled + delivered, kRounds)
      << "exactly one winner per cookie";
  EXPECT_EQ(this->backend_->pending(), 0u);
}

TYPED_TEST(BackendConformance, DetachBlocksUntilDeliveryDrains) {
  // After SetCompletionHandler(nullptr) returns, the old sink must never be
  // entered again — tear the handler down with ops still in flight.
  this->backend_->Submit(10, wali::IoOp::Sleep(2 * kMs));
  TypeParam::Settle(this->backend_.get(), 2 * kMs);
  this->backend_->SetCompletionHandler(nullptr);
  const size_t seen = this->cap_.CountFor(10);
  // Whatever was delivered was delivered; nothing more may arrive.
  TypeParam::Settle(this->backend_.get(), 10 * kMs);
  EXPECT_EQ(this->cap_.CountFor(10), seen);
  this->backend_->Cancel(10);  // absorb either way
}

}  // namespace
