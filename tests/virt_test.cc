// Virtualization baselines: MiniRV assembler/emulator semantics and the
// container runtime's startup/rootfs behavior (Fig. 8 comparators).
#include <gtest/gtest.h>

#include <unistd.h>

#include "src/virt/container.h"
#include "src/virt/minirv.h"

namespace {

using virt::AssembleRv;
using virt::MiniRvMachine;

MiniRvMachine::RunResult RunAsm(const std::string& source,
                                MiniRvMachine* out_machine = nullptr) {
  auto prog = AssembleRv(source);
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  if (!prog.ok()) return {};
  MiniRvMachine::Options opts;
  MiniRvMachine machine(opts);
  EXPECT_TRUE(machine.Load(*prog).ok());
  auto r = machine.Run();
  if (out_machine != nullptr) {
    *out_machine = std::move(machine);
  }
  return r;
}

TEST(MiniRv, ArithmeticAndExit) {
  auto r = RunAsm(R"(
main:
  li t0, 6
  li t1, 7
  mul a0, t0, t1
  li a7, 93
  ecall
)");
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(r.exit_code, 42);
}

TEST(MiniRv, LoopSumAndBranches) {
  // sum 1..100 = 5050; exit 5050 & 0xff = 186
  auto r = RunAsm(R"(
main:
  li t0, 0
  li t1, 1
  li t2, 100
loop:
  bgt_check:
  blt t2, t1, done
  add t0, t0, t1
  addi t1, t1, 1
  j loop
done:
  andi a0, t0, 255
  li a7, 93
  ecall
)");
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(r.exit_code, 5050 & 255);
}

TEST(MiniRv, MemoryAndData) {
  auto r = RunAsm(R"(
main:
  li t0, table
  ld t1, 0(t0)
  ld t2, 8(t0)
  add a0, t1, t2
  sd a0, 16(t0)
  ld a0, 16(t0)
  li a7, 93
  ecall
.data
table:
  .word 30
  .word 12
  .word 0
)");
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(r.exit_code, 42);
}

TEST(MiniRv, FunctionCallRet) {
  auto r = RunAsm(R"(
main:
  li a0, 5
  call double_it
  call double_it
  li a7, 93
  ecall
double_it:
  add a0, a0, a0
  ret
)");
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(r.exit_code, 20);
}

TEST(MiniRv, ConsoleWrite) {
  MiniRvMachine machine({});
  auto r = RunAsm(R"(
main:
  li a0, 1
  li a1, msg
  li a2, 5
  li a7, 64
  ecall
  li a0, 0
  li a7, 93
  ecall
.data
msg: .asciiz "howdy"
)", &machine);
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(machine.console(), "howdy");
}

TEST(MiniRv, SoftmmuFaultsOnRamExhaustion) {
  MiniRvMachine::Options opts;
  opts.ram_pages = 32;  // 128 KiB
  MiniRvMachine machine(opts);
  auto prog = AssembleRv(R"(
main:
  li t0, 0x10000
  li t1, 0x700000
fill:
  bge t0, t1, done
  sb x0, 0(t0)
  addi t0, t0, 4096
  j fill
done:
  li a0, 0
  li a7, 93
  ecall
)");
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(machine.Load(*prog).ok());
  auto r = machine.Run();
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.error, "store fault");
}

TEST(MiniRv, InstructionBudget) {
  MiniRvMachine::Options opts;
  opts.max_instrs = 1000;
  MiniRvMachine machine(opts);
  auto prog = AssembleRv("main:\n  j main\n");
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(machine.Load(*prog).ok());
  auto r = machine.Run();
  EXPECT_FALSE(r.exited);
  EXPECT_EQ(r.executed, 1000u);
}

TEST(MiniRv, UnknownSyscallIsEnosys) {
  auto r = RunAsm(R"(
main:
  li a7, 9999
  ecall
  mv t0, a0
  li a7, 93
  sub a0, x0, t0
  ecall
)");
  ASSERT_TRUE(r.exited) << r.error;
  EXPECT_EQ(r.exit_code, 38);  // ENOSYS
}

TEST(MiniRv, AssemblerRejectsBadInput) {
  EXPECT_FALSE(AssembleRv("main:\n  frobnicate t0, t1\n").ok());
  EXPECT_FALSE(AssembleRv("main:\n  addi t0\n").ok());
  EXPECT_FALSE(AssembleRv("main:\n  beq t0, t1, nowhere\n").ok());
  EXPECT_FALSE(AssembleRv("main:\n  add t9, t0, t1\n").ok());
}

TEST(MiniRv, FootprintTracksCommittedPages) {
  MiniRvMachine machine({});
  auto prog = AssembleRv(R"(
main:
  li t0, 0x500000
  sb x0, 0(t0)
  li a0, 0
  li a7, 93
  ecall
)");
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(machine.Load(*prog).ok());
  uint64_t before = machine.footprint_bytes();
  machine.Run();
  EXPECT_GT(machine.footprint_bytes(), before);
}

// ---- container runtime ----

class ContainerTest : public ::testing::Test {
 protected:
  std::string StateDir() {
    return testing::TempDir() + "/ctr_state_" + std::to_string(getpid());
  }
};

TEST_F(ContainerTest, StartupAssemblesRootfsWithMeasurableCost) {
  virt::ContainerRuntime runtime(StateDir());
  virt::ImageSpec image;
  image.num_layers = 3;
  image.files_per_layer = 10;
  image.daemon_cache_bytes = 1 << 20;
  ASSERT_TRUE(runtime.PrepareImage(image).ok());
  auto c = runtime.Start(image);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_GT(c->startup_ns, 0);
  EXPECT_EQ(c->rootfs_bytes, 3u * 10u * 4096u);
  // The merged rootfs really exists.
  EXPECT_EQ(access((c->rootfs + "/layer0/f0").c_str(), R_OK), 0);
  EXPECT_EQ(access((c->rootfs + "/.runtime/pid").c_str(), R_OK), 0);
  EXPECT_TRUE(runtime.Stop(*c).ok());
  EXPECT_NE(access((c->rootfs + "/layer0/f0").c_str(), R_OK), 0);
}

TEST_F(ContainerTest, RunExecutesWorkloadNatively) {
  virt::ContainerRuntime runtime(StateDir() + "_run");
  virt::ImageSpec image;
  image.num_layers = 1;
  image.files_per_layer = 2;
  image.daemon_cache_bytes = 0;
  ASSERT_TRUE(runtime.PrepareImage(image).ok());
  auto c = runtime.Start(image);
  ASSERT_TRUE(c.ok());
  int counter = 0;
  int64_t ns = runtime.Run(*c, [&] { counter = 41 + 1; });
  EXPECT_EQ(counter, 42);
  EXPECT_GT(ns, 0);
  EXPECT_TRUE(runtime.Stop(*c).ok());
}

TEST_F(ContainerTest, DaemonCacheModelsBaseOverhead) {
  virt::ContainerRuntime runtime(StateDir() + "_mem");
  virt::ImageSpec image;
  image.daemon_cache_bytes = 2 << 20;
  image.num_layers = 1;
  image.files_per_layer = 1;
  ASSERT_TRUE(runtime.PrepareImage(image).ok());
  EXPECT_EQ(runtime.daemon_bytes(), 2u << 20);
}

TEST_F(ContainerTest, StartupScalesWithLayerCount) {
  virt::ContainerRuntime runtime(StateDir() + "_scale");
  virt::ImageSpec small;
  small.num_layers = 1;
  small.files_per_layer = 5;
  small.daemon_cache_bytes = 0;
  virt::ImageSpec big = small;
  big.name = "big";
  big.num_layers = 8;
  big.files_per_layer = 40;
  ASSERT_TRUE(runtime.PrepareImage(small).ok());
  ASSERT_TRUE(runtime.PrepareImage(big).ok());
  // Average a few runs: file-system timing is noisy.
  int64_t small_ns = 0, big_ns = 0;
  for (int i = 0; i < 5; ++i) {
    auto cs = runtime.Start(small);
    ASSERT_TRUE(cs.ok());
    small_ns += cs->startup_ns;
    ASSERT_TRUE(runtime.Stop(*cs).ok());
    auto cb = runtime.Start(big);
    ASSERT_TRUE(cb.ok());
    big_ns += cb->startup_ns;
    ASSERT_TRUE(runtime.Stop(*cb).ok());
  }
  EXPECT_GT(big_ns, small_ns);
}

}  // namespace
