// ABI substrate tests (§2, §3.5): per-ISA syscall table invariants and
// portable-layout marshalling round-trips across all three ISAs on one host.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstring>
#include <set>

#include "src/abi/layout.h"
#include "src/abi/syscall_table.h"

namespace {

using wabi::Isa;

TEST(SyscallTable, SortedUniqueAndLookupable) {
  const auto& table = wabi::SyscallTable();
  ASSERT_GT(table.size(), 300u);
  std::set<std::string> names;
  for (size_t i = 0; i < table.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(std::string(table[i - 1].name), std::string(table[i].name));
    }
    EXPECT_TRUE(names.insert(table[i].name).second) << table[i].name;
  }
  EXPECT_NE(wabi::FindSyscall("openat"), nullptr);
  EXPECT_NE(wabi::FindSyscall("rt_sigaction"), nullptr);
  EXPECT_EQ(wabi::FindSyscall("not_a_syscall"), nullptr);
}

TEST(SyscallTable, LegacyCallsAreX86Only) {
  for (const char* legacy : {"open", "stat", "fork", "pipe", "access", "dup2",
                             "select", "getdents", "unlink", "mkdir"}) {
    const wabi::SyscallEntry* e = wabi::FindSyscall(legacy);
    ASSERT_NE(e, nullptr) << legacy;
    EXPECT_TRUE(e->PresentOn(Isa::kX8664)) << legacy;
    EXPECT_FALSE(e->PresentOn(Isa::kAarch64)) << legacy;
    EXPECT_FALSE(e->PresentOn(Isa::kRiscv64)) << legacy;
  }
}

TEST(SyscallTable, ModernCoreIsUniversal) {
  for (const char* name : {"openat", "read", "write", "clone", "mmap", "futex",
                           "rt_sigaction", "clock_gettime", "exit_group"}) {
    const wabi::SyscallEntry* e = wabi::FindSyscall(name);
    ASSERT_NE(e, nullptr) << name;
    for (int i = 0; i < wabi::kNumIsas; ++i) {
      EXPECT_TRUE(e->PresentOn(static_cast<Isa>(i))) << name;
    }
  }
}

TEST(SyscallTable, NumbersUniquePerIsa) {
  for (int i = 0; i < wabi::kNumIsas; ++i) {
    std::set<int> numbers;
    for (const auto& e : wabi::SyscallTable()) {
      int n = e.number[i];
      if (n >= 0) {
        EXPECT_TRUE(numbers.insert(n).second)
            << wabi::IsaName(static_cast<Isa>(i)) << " duplicate number " << n
            << " (" << e.name << ")";
      }
    }
  }
}

TEST(SyscallTable, SimilarityMatchesPaperShape) {
  wabi::IsaSimilarity sim = wabi::ComputeIsaSimilarity();
  // x86-64 strictly largest; arm64/riscv64 within a couple of each other.
  EXPECT_GT(sim.total[0], sim.total[1]);
  EXPECT_GT(sim.total[0], sim.total[2]);
  EXPECT_NEAR(sim.total[1], sim.total[2], 3);
  EXPECT_GT(sim.common_all, 250);
  EXPECT_GT(sim.arch_specific[0], 30);  // x86 legacy block
  EXPECT_LE(sim.arch_specific[1], 2);
  EXPECT_LE(sim.arch_specific[2], 2);
}

// ---- layout marshalling ----

class StatLayoutRoundtrip : public ::testing::TestWithParam<Isa> {};

TEST_P(StatLayoutRoundtrip, PortableToNativeAndBack) {
  Isa isa = GetParam();
  wabi::WaliKStat in = {};
  in.dev = 0x1122334455667788ull;
  in.ino = 987654321;
  in.nlink = 3;
  in.mode = 0100644;
  in.uid = 1000;
  in.gid = 1001;
  in.rdev = 0xdead;
  in.size = 123456789;
  in.blksize = 4096;
  in.blocks = 2048;
  in.atime_sec = 1700000001;
  in.atime_nsec = 111;
  in.mtime_sec = 1700000002;
  in.mtime_nsec = 222;
  in.ctime_sec = 1700000003;
  in.ctime_nsec = 333;

  uint8_t native[256] = {};
  wabi::WaliStatToNative(in, isa, native);
  wabi::WaliKStat out = {};
  wabi::NativeStatToWali(native, isa, &out);

  EXPECT_EQ(out.dev, in.dev);
  EXPECT_EQ(out.ino, in.ino);
  EXPECT_EQ(out.mode, in.mode);
  EXPECT_EQ(out.uid, in.uid);
  EXPECT_EQ(out.gid, in.gid);
  EXPECT_EQ(out.rdev, in.rdev);
  EXPECT_EQ(out.size, in.size);
  EXPECT_EQ(out.blksize, in.blksize);
  EXPECT_EQ(out.blocks, in.blocks);
  EXPECT_EQ(out.atime_sec, in.atime_sec);
  EXPECT_EQ(out.mtime_nsec, in.mtime_nsec);
  EXPECT_EQ(out.ctime_sec, in.ctime_sec);
  // nlink truncates to 4 bytes on asm-generic; value fits, so equal too.
  EXPECT_EQ(out.nlink, in.nlink);
}

INSTANTIATE_TEST_SUITE_P(AllIsas, StatLayoutRoundtrip,
                         ::testing::Values(Isa::kX8664, Isa::kAarch64,
                                           Isa::kRiscv64));

TEST(StatLayout, HostLayoutMatchesRealStructStat) {
  // The x86-64 descriptor must agree with the host's actual struct stat.
  const wabi::StatLayout& l = wabi::StatLayoutFor(Isa::kX8664);
  EXPECT_EQ(l.dev.offset, offsetof(struct stat, st_dev));
  EXPECT_EQ(l.ino.offset, offsetof(struct stat, st_ino));
  EXPECT_EQ(l.mode.offset, offsetof(struct stat, st_mode));
  EXPECT_EQ(l.nlink.offset, offsetof(struct stat, st_nlink));
  EXPECT_EQ(l.uid.offset, offsetof(struct stat, st_uid));
  EXPECT_EQ(l.size.offset, offsetof(struct stat, st_size));
  EXPECT_EQ(l.atime_sec.offset, offsetof(struct stat, st_atim));
  EXPECT_EQ(l.struct_size, sizeof(struct stat));
}

TEST(StatLayout, RealFstatThroughMarshalling) {
  struct stat st;
  ASSERT_EQ(stat("/tmp", &st), 0);
  wabi::WaliKStat portable;
  wabi::NativeStatToWali(&st, wabi::HostIsa(), &portable);
  EXPECT_EQ(portable.ino, st.st_ino);
  EXPECT_EQ(portable.mode, st.st_mode);
  EXPECT_EQ(portable.size, st.st_size);
  EXPECT_EQ(portable.mtime_sec, st.st_mtim.tv_sec);
  EXPECT_TRUE(S_ISDIR(portable.mode));
}

TEST(OpenFlags, Arm64PermutationRoundtrips) {
  // The four permuted bits translate and round-trip on arm64; identity on
  // the generic ISAs.
  const uint32_t interesting[] = {
      00040000,  // O_DIRECT (generic)
      00100000,  // O_LARGEFILE
      00200000,  // O_DIRECTORY
      00400000,  // O_NOFOLLOW
      00040000 | 00400000,
      0x241,  // O_WRONLY|O_CREAT|O_TRUNC (unaffected bits)
  };
  for (uint32_t flags : interesting) {
    for (Isa isa : {Isa::kX8664, Isa::kAarch64, Isa::kRiscv64}) {
      uint32_t native = wabi::OpenFlagsToNative(flags, isa);
      EXPECT_EQ(wabi::OpenFlagsFromNative(native, isa), flags)
          << wabi::IsaName(isa) << " flags=" << flags;
      if (isa != Isa::kAarch64) {
        EXPECT_EQ(native, flags);
      }
    }
  }
  // On arm64 O_DIRECTORY really moves to its arm64 encoding.
  EXPECT_EQ(wabi::OpenFlagsToNative(00200000, Isa::kAarch64), 00040000u);
}

}  // namespace
