// Binary format round-trips: WAT -> Module -> encode -> decode -> validate
// -> run must preserve observable behaviour; encode(decode(x)) must be
// byte-identical; corrupt inputs must fail cleanly, never crash.
#include <gtest/gtest.h>

#include "src/workloads/workloads.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::DecodeModule;
using wasm::EncodeModule;

// Parses WAT, round-trips through the binary format, and returns the
// re-decoded, validated module.
std::shared_ptr<wasm::Module> Roundtrip(const std::string& wat) {
  auto parsed = wasm::ParseWat(wat);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return nullptr;
  std::vector<uint8_t> bytes = EncodeModule(**parsed);
  auto decoded = DecodeModule(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  if (!decoded.ok()) return nullptr;
  // Stability: encoding the decoded module reproduces the same bytes.
  std::vector<uint8_t> bytes2 = EncodeModule(**decoded);
  EXPECT_EQ(bytes, bytes2);
  auto validated = wasm::Validate(**decoded);
  EXPECT_TRUE(validated.ok()) << validated.ToString();
  if (!validated.ok()) return nullptr;
  return *decoded;
}

uint32_t RunMain(std::shared_ptr<wasm::Module> module,
                 const std::vector<wasm::Value>& args = {}) {
  wasm::Linker linker;
  auto inst = linker.Instantiate(module);
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  auto r = (*inst)->CallExport("main", args);
  EXPECT_EQ(r.trap, wasm::TrapKind::kNone) << r.trap_message;
  return r.values.empty() ? 0 : r.values[0].i32();
}

TEST(Roundtrip, ArithmeticModule) {
  auto m = Roundtrip(R"((module
    (func (export "main") (result i32)
      (i32.add (i32.mul (i32.const 6) (i32.const 7)) (i32.const -2)))))");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(RunMain(m), 40u);
}

TEST(Roundtrip, ControlFlowAndLocals) {
  auto m = Roundtrip(R"((module
    (func (export "main") (result i32)
      (local $i i32) (local $acc i32)
      (block $out
        (loop $l
          (br_if $out (i32.ge_u (local.get $i) (i32.const 17)))
          (local.set $acc (i32.add (local.get $acc) (local.get $i)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
      (local.get $acc))))");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(RunMain(m), 136u);
}

TEST(Roundtrip, BrTableIfElseFloats) {
  auto m = Roundtrip(R"((module
    (func $pick (param i32) (result f64)
      (block $d
        (block $two
          (block $one
            (local.get 0)
            (br_table $one $two $d))
          (return (f64.const 1.5)))
        (return (f64.const 2.5)))
      (f64.const -0.5))
    (func (export "main") (result i32)
      (i32.trunc_f64_s
        (f64.add (f64.add (call $pick (i32.const 0)) (call $pick (i32.const 1)))
                 (f64.mul (call $pick (i32.const 9)) (f64.const 2)))))))");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(RunMain(m), 3u);  // 1.5 + 2.5 + (-1.0) = 3.0
}

TEST(Roundtrip, MemoryTableGlobalsDataElem) {
  auto m = Roundtrip(R"((module
    (type $t (func (result i32)))
    (table 4 funcref)
    (memory 1 2)
    (global $g (mut i32) (i32.const 5))
    (data (i32.const 16) "\2a\00\00\00")
    (func $f1 (type $t) (i32.load (i32.const 16)))
    (func $f2 (type $t) (global.get $g))
    (elem (i32.const 1) $f1 $f2)
    (func (export "main") (result i32)
      (i32.add (call_indirect (type $t) (i32.const 1))
               (call_indirect (type $t) (i32.const 2))))))");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(RunMain(m), 47u);
}

TEST(Roundtrip, ImportsSurvive) {
  auto parsed = wasm::ParseWat(R"((module
    (import "env" "add3" (func $add3 (param i32) (result i32)))
    (import "env" "mem" (memory 1))
    (func (export "main") (result i32) (call $add3 (i32.const 4)))))");
  ASSERT_TRUE(parsed.ok());
  auto decoded = DecodeModule(EncodeModule(**parsed));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(wasm::Validate(**decoded).ok());
  EXPECT_EQ((*decoded)->imports.size(), 2u);
  EXPECT_EQ((*decoded)->num_imported_funcs, 1u);
  EXPECT_EQ((*decoded)->num_imported_memories, 1u);
  wasm::Linker linker;
  wasm::FuncType t;
  t.params = {wasm::ValType::kI32};
  t.results = {wasm::ValType::kI32};
  linker.DefineHostFunc("env", "add3", t,
                        [](wasm::ExecContext&, const uint64_t* a, uint64_t* r) {
                          r[0] = static_cast<uint32_t>(a[0] + 3);
                          return wasm::TrapKind::kNone;
                        });
  wasm::Limits lim;
  lim.min = 1;
  auto mem = wasm::Memory::Create(lim);
  ASSERT_TRUE(mem.ok());
  linker.DefineMemory("env", "mem", *mem);
  auto inst = linker.Instantiate(*decoded);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  auto r = (*inst)->CallExport("main", {});
  EXPECT_EQ(r.values[0].i32(), 7u);
}

// Every runnable workload survives the binary round-trip with identical
// results under WALI.
class WorkloadRoundtrip : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadRoundtrip, SameChecksumFromBinary) {
  const workloads::Workload* w = workloads::FindWorkload(GetParam());
  ASSERT_NE(w, nullptr);
  std::string wat = workloads::InstantiateWat(*w, 3);
  auto direct = wasm::ParseWat(wat);
  ASSERT_TRUE(direct.ok());
  auto decoded = DecodeModule(EncodeModule(**direct));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(wasm::Validate(**decoded).ok());
  ASSERT_TRUE(wasm::Validate(**direct).ok());

  auto run = [](std::shared_ptr<wasm::Module> m) -> uint32_t {
    wasm::Linker linker;
    wali::WaliRuntime runtime(&linker);
    auto proc = runtime.CreateProcess(m, {"rt"}, {});
    EXPECT_TRUE(proc.ok());
    auto r = runtime.RunMain(**proc);
    EXPECT_TRUE(r.ok_or_exit0()) << r.trap_message;
    return r.values.empty() ? 0 : r.values[0].i32();
  };
  EXPECT_EQ(run(*direct), run(*decoded));
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadRoundtrip,
                         ::testing::Values("lua", "bash", "sqlite3", "paho-bench"));

TEST(DecodeErrors, RejectsCorruptInputs) {
  auto parsed = wasm::ParseWat(
      "(module (func (export \"main\") (result i32) (i32.const 7)))");
  ASSERT_TRUE(parsed.ok());
  std::vector<uint8_t> good = EncodeModule(**parsed);

  // Bad magic.
  std::vector<uint8_t> bad = good;
  bad[0] = 0x01;
  EXPECT_FALSE(DecodeModule(bad).ok());
  // Truncations at every prefix must fail or produce a decodable prefix —
  // never crash.
  for (size_t len = 0; len < good.size(); ++len) {
    auto r = DecodeModule(good.data(), len);
    if (len < 8) {
      EXPECT_FALSE(r.ok());
    }
  }
  // Single-byte corruptions: must not crash (may or may not decode).
  for (size_t i = 8; i < good.size(); ++i) {
    std::vector<uint8_t> mutated = good;
    mutated[i] ^= 0xFF;
    auto r = DecodeModule(mutated);
    if (r.ok()) {
      (void)wasm::Validate(**r);  // validation must also be crash-free
    }
  }
}

}  // namespace
