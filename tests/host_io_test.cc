// Deterministic fake-I/O harness for the supervisor's async syscall
// offload: guests entering blocking syscalls park OFF-worker (the worker is
// released), the FakeIoBackend's manual clock and scriptable completions
// drive resume order, and suspended/resumed runs stay bit-identical to
// blocking runs. Fault injection rides the same seam: completions arriving
// after a guest was shed, deadline sheds of parked guests, tenant Forget
// and budget exhaustion mid-park, and supervisor shutdown with parked
// guests — all without real I/O or real time (the sole blocking-baseline
// differential uses a 2ms real sleep).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/host/host.h"
#include "tests/wali_test_util.h"

namespace {

constexpr int64_t kMs = 1000000;

std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

// Sleeps 50ms once, does a little compute, exits 42.
const char* kSleeperGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32)
    (i64.store (i32.const 512) (i64.const 0))
    (i64.store (i32.const 520) (i64.const 50000000))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 100)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (i32.const 42))
)";

// Two 2ms sleeps with compute between: short enough to run for real as the
// blocking baseline of the differential test.
const char* kTwoSleepGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32)
    (i64.store (i32.const 512) (i64.const 0))
    (i64.store (i32.const 520) (i64.const 2000000))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 500)))
        (local.set $acc (i32.add (local.get $acc) (local.get $i)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (i32.rem_u (local.get $acc) (i32.const 97)))
)";

// Pipe round-trip through parked writes and reads: pipe2, write one byte
// (parks: Writable), read it back (parks: Readable), exit with the byte.
const char* kPipeGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $rfd i64) (local $wfd i64) (local $r i64)
    (drop (call $pipe2 (i64.const 256) (i64.const 0)))
    (local.set $rfd (i64.load32_s (i32.const 256)))
    (local.set $wfd (i64.load32_s (i32.const 260)))
    (i32.store8 (i32.const 1024) (i32.const 77))
    (drop (call $write (local.get $wfd) (i64.const 1024) (i64.const 1)))
    (local.set $r (call $read (local.get $rfd) (i64.const 2048) (i64.const 1)))
    (if (i64.ne (local.get $r) (i64.const 1))
      (then (return (i32.const 255))))
    (i32.load8_u (i32.const 2048)))
)";

// Non-blocking I/O must NOT park: O_NONBLOCK pipe (pipe2 flag 0x800) read
// returns -EAGAIN (-11) inline, and poll with timeout 0 returns 0 inline.
// Exits 9 only if both answers match the blocking-path contract.
const char* kNonBlockGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $rfd i64)
    (drop (call $pipe2 (i64.const 256) (i64.const 2048)))  ;; O_NONBLOCK
    (local.set $rfd (i64.load32_s (i32.const 256)))
    (if (i64.ne (call $read (local.get $rfd) (i64.const 1024) (i64.const 1))
                (i64.const -11))
      (then (return (i32.const 1))))
    ;; pollfd at 512: fd, events=POLLIN(1), revents
    (i32.store (i32.const 512) (i32.wrap_i64 (local.get $rfd)))
    (i32.store16 (i32.const 516) (i32.const 1))
    (if (i64.ne (call $poll (i64.const 512) (i64.const 1) (i64.const 0))
                (i64.const 0))
      (then (return (i32.const 2))))
    (i32.const 9))
)";

// ppoll on an empty pipe with a 50ms timespec: musl's poll(3) shape. Must
// park (kPollSet) instead of pinning a worker in the kernel; the timeout
// completion's retry re-polls with timeout 0 and reports 0 ready fds.
const char* kPpollSleeperGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $rfd i64) (local $r i64)
    (drop (call $pipe2 (i64.const 256) (i64.const 0)))
    (local.set $rfd (i64.load32_s (i32.const 256)))
    ;; pollfd at 512: fd, events=POLLIN(1)
    (i32.store (i32.const 512) (i32.wrap_i64 (local.get $rfd)))
    (i32.store16 (i32.const 516) (i32.const 1))
    ;; timespec at 528: 50ms
    (i64.store (i32.const 528) (i64.const 0))
    (i64.store (i32.const 536) (i64.const 50000000))
    (local.set $r (call $ppoll (i64.const 512) (i64.const 1) (i64.const 528)
                               (i64.const 0) (i64.const 8)))
    (if (i64.ne (local.get $r) (i64.const 0))
      (then (return (i32.const 255))))
    (i32.const 21))
)";

// poll with events = POLLIN|POLLOUT on a fresh socketpair end, 1s timeout.
// The park must carry BOTH interests; the socket is writable, so the retry
// materializes revents = POLLOUT and the guest exits with it (4).
const char* kDualInterestPollGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $fd i64) (local $r i64)
    (if (i64.ne (call $socketpair (i64.const 1) (i64.const 1) (i64.const 0)
                                  (i64.const 256))
                (i64.const 0))
      (then (return (i32.const 250))))
    (local.set $fd (i64.load32_s (i32.const 256)))
    ;; pollfd at 512: fd, events = POLLIN|POLLOUT = 5
    (i32.store (i32.const 512) (i32.wrap_i64 (local.get $fd)))
    (i32.store16 (i32.const 516) (i32.const 5))
    (local.set $r (call $poll (i64.const 512) (i64.const 1) (i64.const 1000)))
    (if (i64.ne (local.get $r) (i64.const 1))
      (then (return (i32.const 251))))
    (i32.load16_u (i32.const 518)))
)";

// Plain FUTEX_WAIT with a 50ms timeout in a threadless process: value
// mismatch answers -EAGAIN inline; a matching value parks as a pure timer
// and the retry reports -ETIMEDOUT, exactly as the kernel would.
const char* kFutexWaitGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $r i64)
    (i32.store (i32.const 1024) (i32.const 7))
    ;; timespec at 528: 50ms
    (i64.store (i32.const 528) (i64.const 0))
    (i64.store (i32.const 536) (i64.const 50000000))
    (local.set $r (call $futex (i64.const 1024) (i64.const 0) (i64.const 8)
                               (i64.const 528) (i64.const 0) (i64.const 0)))
    (if (i64.ne (local.get $r) (i64.const -11))
      (then (return (i32.const 252))))
    (local.set $r (call $futex (i64.const 1024) (i64.const 0) (i64.const 7)
                               (i64.const 528) (i64.const 0) (i64.const 0)))
    (if (i64.ne (local.get $r) (i64.const -110))
      (then (return (i32.const 253))))
    (i32.const 31))
)";

// writev then readv through a pipe, two single-byte iovecs each: both park
// on their readiness class and the retries re-translate the iovec arrays
// against live memory. Exits 40 + 2 = 42.
const char* kVectoredPipeGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $rfd i64) (local $wfd i64) (local $r i64)
    (drop (call $pipe2 (i64.const 256) (i64.const 0)))
    (local.set $rfd (i64.load32_s (i32.const 256)))
    (local.set $wfd (i64.load32_s (i32.const 260)))
    (i32.store8 (i32.const 1024) (i32.const 40))
    (i32.store8 (i32.const 1025) (i32.const 2))
    ;; iov at 768: [{1024,1},{1025,1}]
    (i32.store (i32.const 768) (i32.const 1024))
    (i32.store (i32.const 772) (i32.const 1))
    (i32.store (i32.const 776) (i32.const 1025))
    (i32.store (i32.const 780) (i32.const 1))
    (local.set $r (call $writev (local.get $wfd) (i64.const 768) (i64.const 2)))
    (if (i64.ne (local.get $r) (i64.const 2))
      (then (return (i32.const 254))))
    ;; iov at 832: [{2048,1},{2049,1}]
    (i32.store (i32.const 832) (i32.const 2048))
    (i32.store (i32.const 836) (i32.const 1))
    (i32.store (i32.const 840) (i32.const 2049))
    (i32.store (i32.const 844) (i32.const 1))
    (local.set $r (call $readv (local.get $rfd) (i64.const 832) (i64.const 2)))
    (if (i64.ne (local.get $r) (i64.const 2))
      (then (return (i32.const 253))))
    (i32.add (i32.load8_u (i32.const 2048)) (i32.load8_u (i32.const 2049))))
)";

// TCP loopback connect: bind+listen on 127.0.0.1:0, learn the port via
// getsockname, then connect a second socket to it. Nonblocking TCP connect
// always answers -EINPROGRESS, so the connect parks (Writable) and the
// retry reads the outcome from SO_ERROR.
const char* kConnectGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $ls i64) (local $cs i64) (local $r i64)
    (local.set $ls (call $socket (i64.const 2) (i64.const 1) (i64.const 0)))
    (if (i64.lt_s (local.get $ls) (i64.const 0))
      (then (return (i32.const 240))))
    ;; sockaddr_in at 512: family=2, port=0, addr=127.0.0.1
    (i32.store16 (i32.const 512) (i32.const 2))
    (i32.store16 (i32.const 514) (i32.const 0))
    (i32.store (i32.const 516) (i32.const 0x0100007f))
    (i64.store (i32.const 520) (i64.const 0))
    (if (i64.ne (call $bind (local.get $ls) (i64.const 512) (i64.const 16))
                (i64.const 0))
      (then (return (i32.const 241))))
    (if (i64.ne (call $listen (local.get $ls) (i64.const 8)) (i64.const 0))
      (then (return (i32.const 242))))
    ;; learn the bound port: getsockname into 544 (len at 576 = 16)
    (i32.store (i32.const 576) (i32.const 16))
    (if (i64.ne (call $getsockname (local.get $ls) (i64.const 544)
                                   (i64.const 576))
                (i64.const 0))
      (then (return (i32.const 243))))
    (local.set $cs (call $socket (i64.const 2) (i64.const 1) (i64.const 0)))
    (if (i64.lt_s (local.get $cs) (i64.const 0))
      (then (return (i32.const 244))))
    (local.set $r (call $connect (local.get $cs) (i64.const 544) (i64.const 16)))
    (if (i64.ne (local.get $r) (i64.const 0))
      (then (return (i32.const 245))))
    (i32.const 52))
)";

// Pure compute, no syscalls: used to burn tenant fuel deterministically.
const char* kBurnGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32)
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 20000)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (i32.const 0))
)";

struct ManualClock {
  std::shared_ptr<std::atomic<int64_t>> now =
      std::make_shared<std::atomic<int64_t>>(0);

  std::function<int64_t()> fn() const {
    auto n = now;
    return [n] { return n->load(std::memory_order_acquire); };
  }
  void Advance(int64_t nanos) { now->fetch_add(nanos, std::memory_order_acq_rel); }
};

struct IoWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<host::ModuleCache> cache;
  // Owned via pointer (mutex members make the backend immovable);
  // declared before sup so it is destroyed after the supervisor detaches.
  std::unique_ptr<host::FakeIoBackend> fake =
      std::make_unique<host::FakeIoBackend>();
  std::unique_ptr<host::Supervisor> sup;
  ManualClock clock;
};

IoWorld MakeIoWorld(size_t workers, bool with_backend = true,
                    wasm::DispatchMode dispatch = wasm::DispatchMode::kAuto) {
  IoWorld w;
  w.linker = std::make_unique<wasm::Linker>();
  w.runtime = std::make_unique<wali::WaliRuntime>(w.linker.get());
  w.cache = std::make_unique<host::ModuleCache>();
  host::Supervisor::Options opts;
  opts.workers = workers;
  opts.clock = w.clock.fn();
  opts.dispatch = dispatch;
  opts.pool.max_idle_per_module = workers;
  if (with_backend) {
    opts.io_backend = w.fake.get();
  }
  w.sup = std::make_unique<host::Supervisor>(w.runtime.get(), opts);
  return w;
}

host::GuestJob MakeJob(std::shared_ptr<const wasm::Module> module,
                       const std::string& tenant, int64_t deadline = 0) {
  host::GuestJob job;
  job.module = module;
  job.argv = {tenant};
  job.tenant = tenant;
  job.deadline_nanos = deadline;
  return job;
}

// Real threads park asynchronously; bound the wait for the backend to see
// the expected number of pending ops.
bool WaitForPending(const host::FakeIoBackend& fake, size_t n,
                    int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (fake.pending() == n) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return fake.pending() == n;
}

TEST(HostIo, ParkedSleepReleasesWorkerAndResumes) {
  IoWorld w = MakeIoWorld(/*workers=*/1);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok()) << sleeper.status().ToString();
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  EXPECT_EQ(w.sup->parked(), 1u);
  EXPECT_EQ(slept.wait_for(std::chrono::seconds(0)), std::future_status::timeout);

  // The single worker is free while the sleeper is parked: an unrelated job
  // runs to completion with the sleeper still blocked.
  host::RunReport quick = w.sup->Submit(MakeJob(*burner, "t")).get();
  EXPECT_TRUE(quick.completed());
  EXPECT_EQ(w.sup->parked(), 1u);

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = slept.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_EQ(r.parks, 1u);
  EXPECT_EQ(r.total_syscalls, 1u);
  host::Supervisor::IoStats s = w.sup->io_stats();
  EXPECT_EQ(s.parks_total, 1u);
  EXPECT_EQ(s.resumes_total, 1u);
  EXPECT_EQ(s.parked_now, 0u);
}

TEST(HostIo, SixtyFourGuestsInFlightOnFourWorkers) {
  // The acceptance bar: 64 guests blocked on a fake sleep, 4 workers — all
  // 64 in flight concurrently, and ONE 50ms clock advance completes them
  // all (the deterministic analogue of "~1 sleep-duration wall-clock").
  constexpr size_t kGuests = 64;
  constexpr size_t kWorkers = 4;
  IoWorld w = MakeIoWorld(kWorkers);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::vector<std::future<host::RunReport>> futures;
  for (size_t i = 0; i < kGuests; ++i) {
    futures.push_back(w.sup->Submit(MakeJob(*module, "t" + std::to_string(i % 8))));
  }
  ASSERT_TRUE(WaitForPending(*w.fake, kGuests))
      << "all guests must park concurrently; pending=" << w.fake->pending();

  host::Supervisor::IoStats s = w.sup->io_stats();
  EXPECT_EQ(s.parked_now, kGuests);
  EXPECT_EQ(s.in_flight_now, kGuests);
  EXPECT_GT(s.peak_in_flight, kWorkers)
      << "parked guests must not hold workers 1:1";
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::timeout);
  }

  w.fake->AdvanceBy(50 * kMs);
  for (auto& f : futures) {
    host::RunReport r = f.get();
    EXPECT_TRUE(r.completed()) << r.trap_message;
    EXPECT_EQ(r.exit_code, 42);
    EXPECT_EQ(r.parks, 1u);
  }
  s = w.sup->io_stats();
  EXPECT_EQ(s.peak_in_flight, kGuests);
  EXPECT_EQ(s.parks_total, kGuests);
  EXPECT_EQ(s.resumes_total, kGuests);
  EXPECT_EQ(s.parked_now, 0u);
  EXPECT_EQ(s.in_flight_now, 0u);
}

TEST(HostIo, SuspendedRunBitIdenticalToBlockingRun) {
  // The cross-stack differential: the same guest under (a) the synchronous
  // 1:1 model with REAL 2ms kernel sleeps and (b) the fake-I/O offload
  // path must agree bit-for-bit on executed_instrs, fuel_consumed, syscall
  // counts, and exit code — across both dispatch modes.
  for (wasm::DispatchMode mode :
       {wasm::DispatchMode::kSwitch, wasm::DispatchMode::kThreaded}) {
    SCOPED_TRACE(wasm::DispatchModeName(mode));
    IoWorld blocking = MakeIoWorld(1, /*with_backend=*/false, mode);
    auto m1 = blocking.cache->Load(WrapModule(kTwoSleepGuest));
    ASSERT_TRUE(m1.ok()) << m1.status().ToString();
    host::RunReport want = blocking.sup->Submit(MakeJob(*m1, "t")).get();
    ASSERT_TRUE(want.completed()) << want.trap_message;
    EXPECT_EQ(want.parks, 0u);

    IoWorld offload = MakeIoWorld(1, /*with_backend=*/true, mode);
    auto m2 = offload.cache->Load(WrapModule(kTwoSleepGuest));
    ASSERT_TRUE(m2.ok());
    std::future<host::RunReport> fut = offload.sup->Submit(MakeJob(*m2, "t"));
    for (int park = 0; park < 2; ++park) {
      ASSERT_TRUE(WaitForPending(*offload.fake, 1)) << "park " << park;
      offload.fake->AdvanceBy(2 * kMs);
    }
    host::RunReport got = fut.get();
    ASSERT_TRUE(got.completed()) << got.trap_message;
    EXPECT_EQ(got.parks, 2u);

    EXPECT_EQ(got.exit_code, want.exit_code);
    EXPECT_EQ(got.executed_instrs, want.executed_instrs);
    EXPECT_EQ(got.fuel_consumed, want.fuel_consumed);
    EXPECT_EQ(got.total_syscalls, want.total_syscalls);
    ASSERT_EQ(got.syscall_counts.size(), want.syscall_counts.size());
    for (size_t i = 0; i < want.syscall_counts.size(); ++i) {
      EXPECT_EQ(got.syscall_counts[i], want.syscall_counts[i]);
    }
  }
}

TEST(HostIo, PipeRoundTripThroughScriptedCompletions) {
  // Write parks (Writable), read parks (Readable); the test drives the
  // completion ORDER and the retries perform the real, now-ready syscalls.
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kPipeGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  ASSERT_EQ(cookies.size(), 1u);
  wali::IoOp op;
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kWritable);
  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));  // pipe has space: retry writes

  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  cookies = w.fake->PendingCookies();
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kReadable);
  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));  // byte is there: retry reads

  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 77);
  EXPECT_EQ(r.parks, 2u);
}

TEST(HostIo, ScriptedResultOverridesRetry) {
  // A completion carrying a value IS the syscall result — the retry is
  // skipped. This is how tests inject exact kernel answers (here: EBADF
  // for an fd that "closed while the op was in flight").
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kPipeGuest));
  ASSERT_TRUE(module.ok());

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));  // write proceeds
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  cookies = w.fake->PendingCookies();
  // Script the read's answer: -EBADF (fd closed mid-flight). Guest sees
  // read() != 1 and exits 255.
  ASSERT_TRUE(w.fake->CompleteWithResult(cookies[0], -9));
  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.exit_code, 255);
}

TEST(HostIo, PpollSleeperParksInsteadOfPinningWorker) {
  // Regression: SysPpoll used to bypass the offload gate entirely, so a
  // musl guest (whose poll(3) IS ppoll) pinned a worker in the kernel for
  // the full timeout. It must park like poll does. Pre-fix this test hangs
  // at WaitForPending: the fake backend never sees an op.
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kPpollSleeperGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1))
      << "ppoll must offload, not block a worker";
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  ASSERT_EQ(cookies.size(), 1u);
  wali::IoOp op;
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kPollSet);
  ASSERT_EQ(op.poll_fds.size(), 1u);
  EXPECT_EQ(op.poll_fds[0].events, POLLIN);
  EXPECT_EQ(op.timeout_nanos, 50 * kMs);

  w.fake->AdvanceBy(50 * kMs);  // kTimedOut: retry re-polls with timeout 0
  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 21);
  EXPECT_EQ(r.parks, 1u);
}

TEST(HostIo, DualInterestPollParksOnUnionOfInterests) {
  // Regression: the single-fd fast path only understood "POLLIN xor
  // POLLOUT", so events = POLLIN|POLLOUT either refused to park or parked
  // on readability alone and slept to the full timeout on a
  // writable-but-silent socket. The park must carry BOTH interests and the
  // retry must surface the kernel's revents (POLLOUT here).
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kDualInterestPollGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1))
      << "dual-interest poll must still offload";
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  ASSERT_EQ(cookies.size(), 1u);
  wali::IoOp op;
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  ASSERT_EQ(op.kind, wali::IoOp::Kind::kPollSet);
  ASSERT_EQ(op.poll_fds.size(), 1u);
  EXPECT_EQ(op.poll_fds[0].events, POLLIN | POLLOUT)
      << "the parked op must keep the union of interests";

  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));  // socket is writable
  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, POLLOUT) << "guest exits with materialized revents";
  EXPECT_EQ(r.parks, 1u);
}

TEST(HostIo, FutexWaitParksAsTimer) {
  // A threadless FUTEX_WAIT with a timeout has no possible waker, so it is
  // a pure timer: value mismatch answers -EAGAIN inline (no park), a match
  // parks as kSleep and the retry reports -ETIMEDOUT.
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kFutexWaitGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  wali::IoOp op;
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kSleep);
  EXPECT_EQ(op.sleep_nanos, 50 * kMs);

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 31);
  EXPECT_EQ(r.parks, 1u) << "the -EAGAIN probe must answer inline";
}

TEST(HostIo, VectoredPipeIoParksAndRetranslates) {
  // readv/writev ride the same readiness classes as read/write; the retry
  // re-translates the guest iovec array against live memory at resume time.
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kVectoredPipeGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  wali::IoOp op;
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kWritable);
  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));  // pipe has space

  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  cookies = w.fake->PendingCookies();
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kReadable);
  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));  // both bytes are there

  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_EQ(r.parks, 2u);
}

TEST(HostIo, ConnectParksUntilEstablished) {
  // Nonblocking TCP connect answers -EINPROGRESS even on loopback; the
  // handler must park on writability and read the outcome from SO_ERROR
  // instead of holding a worker through the handshake.
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kConnectGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1))
      << "connect must offload instead of blocking";
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  wali::IoOp op;
  ASSERT_TRUE(w.fake->LookupOp(cookies[0], &op));
  EXPECT_EQ(op.kind, wali::IoOp::Kind::kWritable);
  // Loopback handshakes complete in the kernel without our help; SO_ERROR
  // is 0 by the time the retry runs.
  ASSERT_TRUE(w.fake->CompleteReady(cookies[0]));

  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 52);
  EXPECT_EQ(r.parks, 1u);
}

TEST(HostIo, BlockedTimeIsNotQueueTime) {
  // Regression for the RunReport timing split: a sleeping guest accrues
  // blocked_nanos, NOT queue_nanos — and it does not inflate the queue
  // latency of jobs submitted while it sleeps (the pre-offload failure
  // mode: a parked worker made everyone else queue behind it).
  IoWorld w = MakeIoWorld(1);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  // One full second passes (on the supervisor's clock) while parked.
  w.clock.Advance(1000 * kMs);
  host::RunReport quick = w.sup->Submit(MakeJob(*burner, "t")).get();
  EXPECT_TRUE(quick.completed());
  EXPECT_EQ(quick.queue_nanos, 0)
      << "a parked guest must not make later jobs queue";

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = slept.get();
  EXPECT_TRUE(r.completed());
  EXPECT_EQ(r.queue_nanos, 0) << "queue_nanos must exclude parked time";
  EXPECT_GE(r.blocked_nanos, 1000 * kMs);
  EXPECT_EQ(r.parks, 1u);
}

TEST(HostIo, DeadlineShedsParkedGuestAndOrphanCompletionIsAbsorbed) {
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok());

  // Deadline 10ms from now on the supervisor clock; the guest sleeps 50ms.
  // The park folds the deadline into the backend op, so advancing 10ms
  // fires a timeout completion tagged as a shed.
  std::future<host::RunReport> fut =
      w.sup->Submit(MakeJob(*module, "t", /*deadline=*/10 * kMs));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.fake->PendingCookies();
  ASSERT_EQ(cookies.size(), 1u);
  w.clock.Advance(10 * kMs);
  w.fake->AdvanceBy(10 * kMs);

  host::RunReport r = fut.get();
  EXPECT_EQ(r.outcome, host::Outcome::kShed);
  EXPECT_EQ(r.parks, 1u);
  EXPECT_GT(r.executed_instrs, 0u) << "partial execution is settled, not lost";
  EXPECT_EQ(w.sup->io_stats().sheds_while_parked, 1u);
  // Partial consumption reached the ledger.
  host::TenantUsage u = w.sup->ledger().usage("t");
  EXPECT_EQ(u.shed, 1u);
  EXPECT_GT(u.fuel, 0u);

  // Fault injection: the op's "real" completion arrives AFTER the guest
  // was shed. The supervisor absorbs it as an orphan.
  w.fake->ForceComplete(cookies[0], host::IoCompletion::Result(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(w.sup->io_stats().orphan_completions, 1u);
  EXPECT_EQ(w.sup->parked(), 0u);
}

TEST(HostIo, TenantForgottenWhileParked) {
  // TenantLedger::Forget with a parked op: the resume settles into a fresh
  // ledger entry; nothing dangles, nothing crashes (ASan holds the line).
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok());

  std::future<host::RunReport> fut = w.sup->Submit(MakeJob(*module, "gone"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  w.sup->ledger().Forget("gone");
  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = fut.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  // The post-Forget settle re-created the account with this run's usage.
  host::TenantUsage u = w.sup->ledger().usage("gone");
  EXPECT_EQ(u.runs, 1u);
  EXPECT_GT(u.fuel, 0u);
}

TEST(HostIo, BudgetExhaustedWhileParked) {
  // Tenant budget exhaustion mid-park: while guest A is parked, the tenant
  // accrues usage (guest B) and the control plane lowers its budget below
  // what is already consumed. A's resume re-checks admission and stops with
  // kBudget instead of running on a dead account.
  IoWorld w = MakeIoWorld(1);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  std::future<host::RunReport> parked = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  host::RunReport burn = w.sup->Submit(MakeJob(*burner, "t")).get();
  EXPECT_TRUE(burn.completed());
  ASSERT_GT(w.sup->ledger().usage("t").fuel, 1u);
  host::TenantBudget budget;
  budget.max_fuel = 1;  // now far below the tenant's accrued usage
  w.sup->ledger().SetBudget("t", budget);

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = parked.get();
  EXPECT_EQ(r.outcome, host::Outcome::kBudget);
  EXPECT_EQ(r.parks, 1u);
  EXPECT_EQ(w.sup->io_stats().budget_stops_while_parked, 1u);
}

TEST(HostIo, ShutdownDrainsParkedGuests) {
  // Supervisor shutdown with guests parked in syscalls that will never
  // complete: every future resolves (as shed, with partial accounting),
  // every backend op is cancelled, nothing leaks (the ASan job runs this).
  IoWorld w = MakeIoWorld(2);
  auto module = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(module.ok());

  std::vector<std::future<host::RunReport>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(w.sup->Submit(MakeJob(*module, "t" + std::to_string(i))));
  }
  ASSERT_TRUE(WaitForPending(*w.fake, 3));
  w.sup->Shutdown();
  for (auto& f : futures) {
    host::RunReport r = f.get();
    EXPECT_EQ(r.outcome, host::Outcome::kShed);
    EXPECT_GT(r.executed_instrs, 0u);
  }
  EXPECT_EQ(w.fake->pending(), 0u) << "shutdown must cancel parked ops";
  EXPECT_EQ(w.sup->io_stats().in_flight_now, 0u);
}

TEST(HostIo, NonBlockingIoNeverParks) {
  // O_NONBLOCK fds and zero-timeout polls are non-blocking by kernel
  // contract: with offload enabled they must answer inline (-EAGAIN / 0
  // ready fds), never suspend. The guest verifies both answers itself and
  // the report proves no park happened.
  IoWorld w = MakeIoWorld(1);
  auto module = w.cache->Load(WrapModule(kNonBlockGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  host::RunReport r = w.sup->Submit(MakeJob(*module, "t")).get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 9);
  EXPECT_EQ(r.parks, 0u);
  EXPECT_EQ(w.sup->io_stats().parks_total, 0u);
}

TEST(HostIo, ParkedRunReleasesLedgerReservation) {
  // A parked guest must not sit on its budget reservation: the park settles
  // consumed-so-far and releases the slices, so a runnable job of the same
  // tenant can reserve and complete while the fleet sleeps. (Before the
  // release, the sleeper's unknown-demand reservation took the tenant's
  // WHOLE fuel remainder, and the burner would have been clamped to a
  // 1-instruction slice and stopped with kBudget.)
  IoWorld w = MakeIoWorld(2);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());
  host::TenantBudget budget;
  budget.max_fuel = 10000000;  // ample for both runs
  w.sup->ledger().SetBudget("t", budget);

  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));

  // While the sleeper is parked, its reservation is released: the whole
  // unconsumed remainder is available again.
  ASSERT_GT(w.sup->ledger().RemainingFuel("t"), budget.max_fuel / 2);

  host::RunReport burn = w.sup->Submit(MakeJob(*burner, "t")).get();
  EXPECT_TRUE(burn.completed()) << burn.trap_message;
  EXPECT_EQ(burn.outcome, host::Outcome::kCompleted);
  EXPECT_GT(burn.fuel_consumed, 10000u);

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = slept.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_EQ(r.parks, 1u);

  // Park-time partial settles plus finish-time deltas must add up to
  // exactly the two runs' consumption — no double billing.
  host::TenantUsage usage = w.sup->ledger().usage("t");
  EXPECT_EQ(usage.fuel, burn.fuel_consumed + r.fuel_consumed);
  EXPECT_EQ(usage.syscalls, burn.total_syscalls + r.total_syscalls);
}

// Blocking pipe read parks; after the guest flips O_NONBLOCK with
// fcntl(F_SETFL), the cached offloadability classification is invalidated
// and the very next read takes the synchronous path again (-EAGAIN inline,
// no park) — the regression a stale per-fd cache would break.
const char* kFlipNonBlockGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $rfd i64) (local $r i64)
    (drop (call $pipe2 (i64.const 256) (i64.const 0)))
    (local.set $rfd (i64.load32_s (i32.const 256)))
    ;; blocking + async-io => this read parks (completion scripts 0)
    (local.set $r (call $read (local.get $rfd) (i64.const 1024) (i64.const 1)))
    (if (i64.ne (local.get $r) (i64.const 0))
      (then (return (i32.const 1))))
    ;; F_SETFL = 4, O_NONBLOCK = 0x800
    (drop (call $fcntl (local.get $rfd) (i64.const 4) (i64.const 2048)))
    ;; the sync path must re-engage: empty nonblocking pipe answers -EAGAIN
    (if (i64.ne (call $read (local.get $rfd) (i64.const 1024) (i64.const 1))
                (i64.const -11))
      (then (return (i32.const 2))))
    (i32.const 9))
)";

TEST(HostIo, SetflInvalidatesOffloadabilityCache) {
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);
  auto parsed = wasm::ParseAndValidateWat(WrapModule(kFlipNonBlockGuest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto proc = runtime.CreateProcess(*parsed, {"flip"}, {});
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();

  wali::WaliRuntime::MainContinuation cont;
  wasm::RunResult r = runtime.RunMain(**proc, runtime.exec_options(), &cont);
  // First read: classified offloadable (and cached) -> parks.
  ASSERT_EQ(r.trap, wasm::TrapKind::kSyscallPending) << r.trap_message;
  ASSERT_TRUE(cont.armed());
  EXPECT_EQ((*proc)->pending_io.op.kind, wali::IoOp::Kind::kReadable);

  // Resume with "read returned 0". The guest then flips O_NONBLOCK and
  // reads again: that read must NOT park — a second kSyscallPending here
  // means the stale cache routed a non-blocking fd to the async path.
  r = runtime.ResumeMain(**proc, cont, 0);
  ASSERT_NE(r.trap, wasm::TrapKind::kSyscallPending)
      << "read after F_SETFL(O_NONBLOCK) must take the sync path";
  EXPECT_TRUE(r.ok() || r.trap == wasm::TrapKind::kExit) << r.trap_message;
  EXPECT_EQ(r.exit_code, 9);
}

// Same regression through ioctl(FIONBIO), the alternate O_NONBLOCK flip.
const char* kIoctlFlipGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $rfd i64) (local $r i64)
    (drop (call $pipe2 (i64.const 256) (i64.const 0)))
    (local.set $rfd (i64.load32_s (i32.const 256)))
    (local.set $r (call $read (local.get $rfd) (i64.const 1024) (i64.const 1)))
    (if (i64.ne (local.get $r) (i64.const 0))
      (then (return (i32.const 1))))
    ;; FIONBIO = 0x5421, *argp = 1 (enable non-blocking)
    (i32.store (i32.const 512) (i32.const 1))
    (drop (call $ioctl (local.get $rfd) (i64.const 0x5421) (i64.const 512)))
    (if (i64.ne (call $read (local.get $rfd) (i64.const 1024) (i64.const 1))
                (i64.const -11))
      (then (return (i32.const 2))))
    (i32.const 9))
)";

TEST(HostIo, IoctlFionbioInvalidatesOffloadabilityCache) {
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);
  auto parsed = wasm::ParseAndValidateWat(WrapModule(kIoctlFlipGuest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto proc = runtime.CreateProcess(*parsed, {"ioctl-flip"}, {});
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();

  wali::WaliRuntime::MainContinuation cont;
  wasm::RunResult r = runtime.RunMain(**proc, runtime.exec_options(), &cont);
  ASSERT_EQ(r.trap, wasm::TrapKind::kSyscallPending) << r.trap_message;
  r = runtime.ResumeMain(**proc, cont, 0);
  ASSERT_NE(r.trap, wasm::TrapKind::kSyscallPending)
      << "read after ioctl(FIONBIO) must take the sync path";
  EXPECT_TRUE(r.ok() || r.trap == wasm::TrapKind::kExit) << r.trap_message;
  EXPECT_EQ(r.exit_code, 9);
}

TEST(HostIo, OffloadCacheClassifiesAndInvalidates) {
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);
  auto parsed = wasm::ParseAndValidateWat(WrapModule(kBurnGuest));
  ASSERT_TRUE(parsed.ok());
  auto proc = runtime.CreateProcess(*parsed, {"cache"}, {});
  ASSERT_TRUE(proc.ok());
  wali::WaliProcess& p = **proc;

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Pipes classify offloadable; the answer is cached.
  EXPECT_TRUE(p.OffloadableCached(fds[0]));
  // Flip O_NONBLOCK behind the cache's back: the cached (now stale) answer
  // survives until an invalidation hook fires — this is exactly why the
  // dispatch wrapper invalidates on fcntl(F_SETFL).
  int fl = ::fcntl(fds[0], F_GETFL);
  ASSERT_GE(fl, 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, fl | O_NONBLOCK), 0);
  EXPECT_TRUE(p.OffloadableCached(fds[0]));  // stale, by construction
  p.InvalidateOffloadFd(fds[0]);
  EXPECT_FALSE(p.OffloadableCached(fds[0]));  // reclassified: non-blocking
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(HostIo, RunAllPreservesSubmissionOrderAcrossParks) {
  // Reports come back in submission order even when some guests park and
  // resume out of order relative to synchronous guests.
  IoWorld w = MakeIoWorld(2);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());

  std::vector<host::GuestJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i % 2 == 0 ? *sleeper : *burner, "t"));
  }
  std::thread completer([&w] {
    // Drive the fake from the side: keep elapsing sleep time until all
    // three sleepers have resumed.
    while (w.sup->io_stats().resumes_total < 3) {
      if (w.fake->pending() > 0) {
        w.fake->AdvanceBy(50 * kMs);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  std::vector<host::RunReport> reports = w.sup->RunAll(std::move(jobs));
  completer.join();
  ASSERT_EQ(reports.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(reports[i].completed()) << i << ": " << reports[i].trap_message;
    EXPECT_EQ(reports[i].exit_code, i % 2 == 0 ? 42 : 0) << i;
    EXPECT_EQ(reports[i].parks, i % 2 == 0 ? 1u : 0u) << i;
  }
}

// ---------------------------------------------------------------------------
// Snapshot eviction: a parked guest's state leaves the process (or the
// process's memory) entirely and comes back bit-exact.

// IoWorld plus a telemetry sink and an optional on-disk evict directory.
struct EvictWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<host::ModuleCache> cache;
  std::unique_ptr<host::Telemetry> tel = std::make_unique<host::Telemetry>();
  std::unique_ptr<host::FakeIoBackend> fake =
      std::make_unique<host::FakeIoBackend>();
  ManualClock clock;
  std::unique_ptr<host::Supervisor> sup;
};

EvictWorld MakeEvictWorld(size_t workers, const std::string& evict_dir = "") {
  EvictWorld w;
  w.linker = std::make_unique<wasm::Linker>();
  w.runtime = std::make_unique<wali::WaliRuntime>(w.linker.get());
  w.cache = std::make_unique<host::ModuleCache>();
  host::Supervisor::Options opts;
  opts.workers = workers;
  opts.clock = w.clock.fn();
  opts.pool.max_idle_per_module = workers;
  opts.telemetry = w.tel.get();
  opts.evict_dir = evict_dir;
  w.fake->SetTelemetry(w.tel.get());
  opts.io_backend = w.fake.get();
  w.sup = std::make_unique<host::Supervisor>(w.runtime.get(), opts);
  return w;
}

std::vector<host::TraceEvent> EventsForRun(const host::Telemetry::Snapshot& s,
                                           uint64_t run_id) {
  std::vector<host::TraceEvent> out;
  for (const host::TraceEvent& e : s.spans) {
    if (e.run_id == run_id) out.push_back(e);
  }
  return out;
}

TEST(HostIo, EvictParkedRestoreLedgerExact) {
  // Park the sleeper, serialize it out of its pool slot (in-memory mode),
  // run an unrelated guest through the freed capacity, complete the I/O,
  // and let the restore path rehydrate it. The run must finish exactly as
  // an unevicted one — and the tenant ledger's park-time settle plus
  // finish-time deltas must sum to precisely both runs' consumption: an
  // evict/restore cycle bills nothing twice and loses nothing.
  EvictWorld w = MakeEvictWorld(/*workers=*/1);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok()) << sleeper.status().ToString();
  auto burner = w.cache->Load(WrapModule(kBurnGuest));
  ASSERT_TRUE(burner.ok());
  host::TenantBudget budget;
  budget.max_fuel = 10000000;
  w.sup->ledger().SetBudget("t", budget);

  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));

  std::vector<uint64_t> cookies = w.sup->parked_cookies();
  ASSERT_EQ(cookies.size(), 1u);
  common::Status ev = w.sup->EvictParked(cookies[0]);
  ASSERT_TRUE(ev.ok()) << ev.ToString();
  host::Supervisor::IoStats s = w.sup->io_stats();
  EXPECT_EQ(s.evicted_now, 1u);
  EXPECT_EQ(s.evicts_total, 1u);
  EXPECT_EQ(s.parked_now, 1u) << "evicted runs are still parked";

  // Double-evicting the same cookie is refused, not fatal.
  EXPECT_FALSE(w.sup->EvictParked(cookies[0]).ok());

  // The slab is free: an unrelated guest of the same tenant runs on the
  // sole worker while the sleeper exists only as snapshot bytes.
  host::RunReport burn = w.sup->Submit(MakeJob(*burner, "t")).get();
  EXPECT_TRUE(burn.completed()) << burn.trap_message;

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = slept.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_EQ(r.parks, 1u);
  EXPECT_EQ(r.total_syscalls, 1u);

  s = w.sup->io_stats();
  EXPECT_EQ(s.evicted_now, 0u);
  EXPECT_EQ(s.restores_total, 1u);
  EXPECT_EQ(s.parked_now, 0u);

  // No double billing across the evict/restore boundary.
  host::TenantUsage usage = w.sup->ledger().usage("t");
  EXPECT_EQ(usage.fuel, burn.fuel_consumed + r.fuel_consumed);
  EXPECT_EQ(usage.syscalls, burn.total_syscalls + r.total_syscalls);
}

TEST(HostIo, EvictParkedToDiskAndRestore) {
  // Same lifecycle with Options::evict_dir set: the snapshot lands as a
  // file (nothing retained in memory), and the restore consumes + deletes
  // it.
  std::string dir = testing::TempDir() + "wali_evict_test";
  ::mkdir(dir.c_str(), 0700);
  EvictWorld w = MakeEvictWorld(/*workers=*/1, dir);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok()) << sleeper.status().ToString();

  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.sup->parked_cookies();
  ASSERT_EQ(cookies.size(), 1u);
  ASSERT_TRUE(w.sup->EvictParked(cookies[0]).ok());

  std::string path = dir + "/evict-" + std::to_string(cookies[0]) + ".snap";
  EXPECT_EQ(::access(path.c_str(), F_OK), 0) << "snapshot file must exist";

  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = slept.get();
  EXPECT_TRUE(r.completed()) << r.trap_message;
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_NE(::access(path.c_str(), F_OK), 0)
      << "restore must consume and remove the snapshot file";
  ::rmdir(dir.c_str());
}

TEST(HostIo, EvictAllParkedSweepsTheParkedSet) {
  constexpr size_t kGuests = 8;
  EvictWorld w = MakeEvictWorld(/*workers=*/2);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());
  std::vector<std::future<host::RunReport>> futures;
  for (size_t i = 0; i < kGuests; ++i) {
    futures.push_back(w.sup->Submit(MakeJob(*sleeper, "t" + std::to_string(i))));
  }
  ASSERT_TRUE(WaitForPending(*w.fake, kGuests));
  EXPECT_EQ(w.sup->EvictAllParked(), kGuests);
  EXPECT_EQ(w.sup->io_stats().evicted_now, kGuests);

  w.fake->AdvanceBy(50 * kMs);
  for (auto& f : futures) {
    host::RunReport r = f.get();
    EXPECT_TRUE(r.completed()) << r.trap_message;
    EXPECT_EQ(r.exit_code, 42);
  }
  host::Supervisor::IoStats s = w.sup->io_stats();
  EXPECT_EQ(s.restores_total, kGuests);
  EXPECT_EQ(s.evicted_now, 0u);
}

TEST(HostIo, EvictedRunSpanOrdering) {
  // The run's telemetry trace must read, in order:
  //   submit -> dispatch -> park -> evict -> io_complete -> restore ->
  //   resume -> finish
  // so an operator reading a trace can see exactly when the guest existed
  // only as snapshot bytes.
  EvictWorld w = MakeEvictWorld(/*workers=*/1);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());

  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.sup->parked_cookies();
  ASSERT_EQ(cookies.size(), 1u);
  ASSERT_TRUE(w.sup->EvictParked(cookies[0]).ok());
  w.fake->AdvanceBy(50 * kMs);
  host::RunReport r = slept.get();
  ASSERT_TRUE(r.completed()) << r.trap_message;

  host::Telemetry::Snapshot snap = w.tel->TakeSnapshot();
  ASSERT_FALSE(snap.spans.empty());
  std::vector<host::TraceEvent> ev = EventsForRun(snap, snap.spans[0].run_id);
  ASSERT_EQ(ev.size(), 8u);
  EXPECT_EQ(ev[0].event, host::SpanEvent::kSubmit);
  EXPECT_EQ(ev[1].event, host::SpanEvent::kDispatch);
  EXPECT_EQ(ev[2].event, host::SpanEvent::kPark);
  EXPECT_EQ(ev[3].event, host::SpanEvent::kEvict);
  EXPECT_EQ(ev[4].event, host::SpanEvent::kIoComplete);
  EXPECT_EQ(ev[5].event, host::SpanEvent::kRestore);
  EXPECT_EQ(ev[6].event, host::SpanEvent::kResume);
  EXPECT_EQ(ev[7].event, host::SpanEvent::kFinish);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].t_nanos, ev[i - 1].t_nanos) << "event " << i;
  }
  // Metrics mirror the lifecycle.
  uint64_t evicts = 0, restores = 0;
  for (const auto& [name, value] : snap.registry.counters) {
    if (name == "supervisor_evictions_total") evicts = value;
    if (name == "supervisor_restores_total") restores = value;
  }
  EXPECT_EQ(evicts, 1u);
  EXPECT_EQ(restores, 1u);
}

TEST(HostIo, ShutdownWithEvictedRunResolvesFuture) {
  // Shutdown while a run exists only as snapshot bytes: the future must
  // still resolve (shed, with the fuel settled at park time), and nothing
  // leaks (the ASan job runs this).
  EvictWorld w = MakeEvictWorld(/*workers=*/1);
  auto sleeper = w.cache->Load(WrapModule(kSleeperGuest));
  ASSERT_TRUE(sleeper.ok());
  std::future<host::RunReport> slept = w.sup->Submit(MakeJob(*sleeper, "t"));
  ASSERT_TRUE(WaitForPending(*w.fake, 1));
  std::vector<uint64_t> cookies = w.sup->parked_cookies();
  ASSERT_EQ(cookies.size(), 1u);
  ASSERT_TRUE(w.sup->EvictParked(cookies[0]).ok());

  w.sup->Shutdown();
  host::RunReport r = slept.get();
  EXPECT_EQ(r.outcome, host::Outcome::kShed);
  EXPECT_GT(r.executed_instrs, 0u) << "park-time fuel settle must survive";
  EXPECT_EQ(w.sup->io_stats().evicted_now, 0u);
}

}  // namespace
