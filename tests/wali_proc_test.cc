// WALI process model (paper §3.1): identity passthrough, argv/env transfer
// (§3.4), exit codes, fork+wait4 passthrough, and instance-per-thread clone
// with shared linear memory and futex-based join.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "tests/wali_test_util.h"

namespace {

using wali_test::ExpectWaliMain;
using wali_test::RunWali;

TEST(WaliProc, GetpidMatchesHost) {
  auto world = RunWali(R"(
    (memory 1)
    (func (export "main") (result i32) (i32.wrap_i64 (call $getpid)))
  )");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_EQ(world.result.values[0].i32(), static_cast<uint32_t>(getpid()));
}

TEST(WaliProc, UnameReportsWasm32) {
  // machine field is at offset 4*65 in struct utsname.
  std::string body = R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i64.ne (call $uname (i64.const 1024)) (i64.const 0))
        (then (return (i32.const 1))))
      ;; "wasm" little-endian = 0x6D736177
      (if (i32.ne (i32.load offset=260 (i32.const 1024)) (i32.const 0x6D736177))
        (then (return (i32.const 2))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliProc, ArgvTransfer) {
  // Reads argv[1] ("abc") through get_argc/get_argv_len/copy_argv.
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (if (i64.ne (call $get_argc) (i64.const 2)) (then (return (i32.const 1))))
      (if (i64.ne (call $get_argv_len (i64.const 1)) (i64.const 4))
        (then (return (i32.const 2))))
      (if (i64.ne (call $copy_argv (i64.const 1024) (i64.const 1)) (i64.const 4))
        (then (return (i32.const 3))))
      ;; "abc\0" = 0x00636261
      (if (i32.ne (i32.load (i32.const 1024)) (i32.const 0x00636261))
        (then (return (i32.const 4))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0, {"prog", "abc"});
}

TEST(WaliProc, EnvTransferExplicitOnly) {
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (if (i64.ne (call $get_envc) (i64.const 1)) (then (return (i32.const 1))))
      (drop (call $copy_env (i64.const 1024) (i64.const 0)))
      ;; "K=V\0"
      (if (i32.ne (i32.load (i32.const 1024)) (i32.const 0x00563D4B))
        (then (return (i32.const 2))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0, {"prog"}, {"K=V"});
}

TEST(WaliProc, ExitGroupCode) {
  auto world = RunWali(R"(
    (memory 1)
    (func (export "main") (result i32)
      (drop (call $exit_group (i64.const 42)))
      (i32.const 0))
  )");
  EXPECT_EQ(world.result.trap, wasm::TrapKind::kExit);
  EXPECT_EQ(world.result.exit_code, 42);
}

TEST(WaliProc, ForkAndWait4Passthrough) {
  // Guest forks; the child exits 7 via exit_group, the parent wait4s and
  // returns the decoded exit status. The child's host process must leave
  // gtest immediately — detected by exit code 7 from RunMain.
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (local $pid i64) (local $status i32)
      (local.set $pid (call $fork))
      (if (i64.lt_s (local.get $pid) (i64.const 0)) (then (return (i32.const 1))))
      (if (i64.eqz (local.get $pid))
        (then (drop (call $exit_group (i64.const 7))) (return (i32.const 99))))
      (if (i64.lt_s (call $wait4 (local.get $pid) (i64.const 1024) (i64.const 0)
                          (i64.const 0))
                    (i64.const 0))
        (then (return (i32.const 2))))
      ;; WEXITSTATUS(status) = (status >> 8) & 0xff
      (local.set $status (i32.load (i32.const 1024)))
      (i32.and (i32.shr_u (local.get $status) (i32.const 8)) (i32.const 0xff)))
  )";
  auto world = RunWali(body);
  if (world.result.trap == wasm::TrapKind::kExit && world.result.exit_code == 7) {
    _exit(7);  // we are the forked child: leave the test binary quietly
  }
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), 7u);
}

TEST(WaliProc, CloneSpawnsSharedMemoryThread) {
  // Parent clones a thread that adds 100..109 into a shared counter via
  // atomic rmw, then stores a done-flag. Parent spin-waits at safepoints.
  std::string body = R"(
    (memory 2 4 shared)
    (table 4 funcref)
    (func $child (param i32) (result i32)
      (local $i i32)
      (loop $l
        (drop (i32.atomic.rmw.add (i32.const 2048)
                                  (i32.add (i32.const 100) (local.get $i))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br_if $l (i32.lt_u (local.get $i) (i32.const 10))))
      (i32.atomic.store (i32.const 2052) (i32.const 1))
      (i32.const 0))
    (elem (i32.const 1) $child)
    (func (export "main") (result i32)
      ;; clone(CLONE_VM, entry=1, arg=0, ptid=0, ctid=0)
      (if (i64.lt_s (call $clone (i64.const 0x100) (i64.const 1) (i64.const 0)
                          (i64.const 0) (i64.const 0))
                    (i64.const 0))
        (then (return (i32.const 1))))
      (block $done
        (loop $spin
          (br_if $done (i32.eq (i32.atomic.load (i32.const 2052)) (i32.const 1)))
          (drop (call $sched_yield))
          (br $spin)))
      ;; sum of 100..109 = 1045
      (i32.atomic.load (i32.const 2048)))
  )";
  auto world = RunWali(body);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), 1045u);
  EXPECT_EQ(world.process->thread_count(), 0);  // joined by RunMain
}

TEST(WaliProc, CloneRequiresVmFlag) {
  std::string body = R"(
    (memory 1)
    (table 1 funcref)
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
          (call $clone (i64.const 0) (i64.const 0) (i64.const 0) (i64.const 0)
                (i64.const 0)))))
  )";
  ExpectWaliMain(body, ENOSYS);
}

TEST(WaliProc, ExitGroupStopsSiblingThreads) {
  // A spawned thread spins forever; the main thread exit_groups. The spinner
  // must be terminated at a safepoint and the process join cleanly.
  std::string body = R"(
    (memory 2 4 shared)
    (table 4 funcref)
    (func $spinner (param i32) (result i32)
      (loop $forever
        (drop (call $sched_yield))
        (br $forever))
      (i32.const 0))
    (elem (i32.const 1) $spinner)
    (func (export "main") (result i32)
      (if (i64.lt_s (call $clone (i64.const 0x100) (i64.const 1) (i64.const 0)
                          (i64.const 0) (i64.const 0))
                    (i64.const 0))
        (then (return (i32.const 1))))
      (drop (call $exit_group (i64.const 11)))
      (i32.const 99))
  )";
  auto world = RunWali(body);
  EXPECT_EQ(world.result.trap, wasm::TrapKind::kExit);
  EXPECT_EQ(world.result.exit_code, 11);
}

TEST(WaliProc, GetrandomFillsBuffer) {
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (if (i64.ne (call $getrandom (i64.const 1024) (i64.const 16) (i64.const 0))
                  (i64.const 16))
        (then (return (i32.const 1))))
      ;; 16 random bytes being all-zero has probability 2^-128
      (if (i64.eqz (i64.or (i64.load (i32.const 1024))
                           (i64.load (i32.const 1032))))
        (then (return (i32.const 2))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

}  // namespace
