// User-space syscall policy layer (§3.6 / §6): deny, kill, audit logging,
// default actions, and fault injection — interposed above WALI without
// touching the engine's TCB.
#include <gtest/gtest.h>

#include <errno.h>
#include <unistd.h>

#include "tests/wali_test_util.h"

namespace {

using wali_test::RunWali;

const char* kGetpidLoop = R"(
  (memory 1)
  (func (export "main") (result i32)
    (local $i i32) (local $last i64)
    (block $out
      (loop $l
        (br_if $out (i32.ge_u (local.get $i) (i32.const 10)))
        (local.set $last (call $getpid))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (i32.wrap_i64 (local.get $last)))
)";

// Builds the world but installs `policy` before running main.
wali_test::WaliWorld RunWithPolicy(const std::string& body,
                                   std::shared_ptr<wali::SyscallPolicy> policy) {
  wali_test::WaliWorld world;
  std::string wat = std::string("(module ") + wali_test::kPrelude + body + ")";
  auto parsed = wasm::ParseAndValidateWat(wat);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return world;
  world.linker = std::make_unique<wasm::Linker>();
  world.runtime = std::make_unique<wali::WaliRuntime>(world.linker.get());
  auto proc = world.runtime->CreateProcess(*parsed, {"test"}, {});
  EXPECT_TRUE(proc.ok());
  if (!proc.ok()) return world;
  world.process = std::move(*proc);
  world.process->policy = std::move(policy);
  world.result = world.runtime->RunMain(*world.process);
  return world;
}

TEST(WaliPolicy, DenyReturnsConfiguredErrno) {
  auto policy = std::make_shared<wali::SyscallPolicy>();
  policy->Deny("getpid", EPERM);
  auto world = RunWithPolicy(kGetpidLoop, policy);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_EQ(static_cast<int32_t>(world.result.values[0].i32()), -EPERM);
  EXPECT_EQ(policy->calls("getpid"), 10u);
  EXPECT_EQ(policy->denials("getpid"), 10u);
}

TEST(WaliPolicy, KillTrapsTheProcess) {
  auto policy = std::make_shared<wali::SyscallPolicy>();
  policy->Kill("getpid");
  auto world = RunWithPolicy(kGetpidLoop, policy);
  EXPECT_EQ(world.result.trap, wasm::TrapKind::kHostError);
}

TEST(WaliPolicy, AllowListDefaultDeny) {
  // seccomp-strict style: everything denied except an explicit allow list.
  auto policy = std::make_shared<wali::SyscallPolicy>();
  policy->SetDefault(wali::SyscallPolicy::Action::kDeny, ENOSYS);
  policy->Allow("getpid");
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      ;; getpid allowed; getuid falls to the default-deny
      (if (i64.le_s (call $getpid) (i64.const 0)) (then (return (i32.const 1))))
      (i32.wrap_i64 (i64.sub (i64.const 0) (call $getuid))))
  )";
  auto world = RunWithPolicy(body, policy);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_EQ(world.result.values[0].i32(), static_cast<uint32_t>(ENOSYS));
}

TEST(WaliPolicy, FaultInjectionCadence) {
  // Every 3rd getpid fails with EIO: out of 10 calls, calls 3,6,9 fail.
  auto policy = std::make_shared<wali::SyscallPolicy>();
  policy->InjectFault("getpid", 3, EIO);
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (local $i i32) (local $failures i32)
      (block $out
        (loop $l
          (br_if $out (i32.ge_u (local.get $i) (i32.const 10)))
          (if (i64.lt_s (call $getpid) (i64.const 0))
            (then (local.set $failures (i32.add (local.get $failures) (i32.const 1)))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
      (local.get $failures))
  )";
  auto world = RunWithPolicy(body, policy);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_EQ(world.result.values[0].i32(), 3u);
  EXPECT_EQ(policy->denials("getpid"), 3u);
}

TEST(WaliPolicy, AuditLogCoversDefaultActionCalls) {
  auto policy = std::make_shared<wali::SyscallPolicy>();
  auto world = RunWithPolicy(kGetpidLoop, policy);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  auto log = policy->AuditLog();
  bool found = false;
  for (const auto& [name, calls] : log) {
    if (name == "getpid") {
      found = true;
      EXPECT_EQ(calls, 10u);
    }
  }
  EXPECT_TRUE(found);
  // And the run itself succeeded (default allow).
  EXPECT_EQ(world.result.values[0].i32(), static_cast<uint32_t>(getpid()));
}

TEST(WaliPolicy, NoPolicyMeansNoInterference) {
  auto world = RunWali(kGetpidLoop);
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_EQ(world.result.values[0].i32(), static_cast<uint32_t>(getpid()));
}

}  // namespace
