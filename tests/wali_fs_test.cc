// WALI filesystem syscalls end-to-end: guests do real file I/O through the
// thin interface; checks passthrough results, zero-copy reads/writes, the
// portable kstat layout, errno convention, EFAULT on bad pointers, and the
// /proc/self/mem interposition (paper §3.2, §3.5, §3.6).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "tests/wali_test_util.h"

namespace {

using wali_test::ExpectWaliMain;
using wali_test::RunWali;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/wali_fs_" + std::to_string(getpid()) + "_" + name;
}

// Writes "hello\n" to a file, closes, reopens, reads it back, compares.
TEST(WaliFs, WriteReadRoundtrip) {
  std::string path = TempPath("roundtrip");
  std::string body = R"(
    (memory 2)
    (data (i32.const 64) ")" + path + R"(\00")" + R"()
    (data (i32.const 256) "hello\n")
    (func (export "main") (result i32)
      (local $fd i64)
      ;; open(path, O_WRONLY|O_CREAT|O_TRUNC, 0644) = flags 0x241
      (local.set $fd (call $open (i64.const 64) (i64.const 0x241) (i64.const 0x1a4)))
      (if (i64.lt_s (local.get $fd) (i64.const 0)) (then (return (i32.const 1))))
      (if (i64.ne (call $write (local.get $fd) (i64.const 256) (i64.const 6))
                  (i64.const 6))
        (then (return (i32.const 2))))
      (drop (call $close (local.get $fd)))
      ;; reopen read-only
      (local.set $fd (call $open (i64.const 64) (i64.const 0) (i64.const 0)))
      (if (i64.lt_s (local.get $fd) (i64.const 0)) (then (return (i32.const 3))))
      (if (i64.ne (call $read (local.get $fd) (i64.const 512) (i64.const 64))
                  (i64.const 6))
        (then (return (i32.const 4))))
      (drop (call $close (local.get $fd)))
      ;; compare bytes
      (if (i32.ne (i32.load (i32.const 512)) (i32.load (i32.const 256)))
        (then (return (i32.const 5))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
  // Host-side verification of the guest's write.
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[16] = {0};
  ASSERT_EQ(fread(buf, 1, 6, f), 6u);
  EXPECT_EQ(std::string(buf, 6), "hello\n");
  fclose(f);
  unlink(path.c_str());
}

TEST(WaliFs, StatPortableLayout) {
  std::string path = TempPath("statfile");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("0123456789", f);  // size 10
  fclose(f);
  // WaliKStat layout: size is at offset 48 (see wabi::WaliKStat).
  std::string body = R"(
    (memory 2)
    (data (i32.const 64) ")" + path + R"(\00")" + R"()
    (func (export "main") (result i32)
      (if (i64.ne (call $stat (i64.const 64) (i64.const 1024)) (i64.const 0))
        (then (return (i32.const 1))))
      ;; return the file size from the portable kstat record
      (i32.wrap_i64 (i64.load offset=48 (i32.const 1024))))
  )";
  ExpectWaliMain(body, 10);
  unlink(path.c_str());
}

TEST(WaliFs, ErrnoConventionOnMissingFile) {
  // open of a nonexistent file returns -ENOENT (=-2).
  std::string body = R"(
    (memory 2)
    (data (i32.const 64) "/definitely/not/a/file\00")
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $open (i64.const 64) (i64.const 0) (i64.const 0)))))
  )";
  ExpectWaliMain(body, ENOENT);
}

TEST(WaliFs, EfaultOnBadPointer) {
  // write(1, huge_addr, 8) -> -EFAULT because the buffer is out of bounds.
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $write (i64.const 1) (i64.const 0x7FFFFFFF) (i64.const 8)))))
  )";
  ExpectWaliMain(body, EFAULT);
}

TEST(WaliFs, ProcSelfMemBlocked) {
  // §3.6: /proc/self/mem is interposed and refused with EACCES.
  std::string body = R"(
    (memory 1)
    (data (i32.const 64) "/proc/self/mem\00")
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $open (i64.const 64) (i64.const 0) (i64.const 0)))))
  )";
  ExpectWaliMain(body, EACCES);
}

TEST(WaliFs, ProcSelfMemDotDotSpellingBlocked) {
  // Regression: the interposition must normalize `.`/`..` segments before
  // matching, or /proc/self/../self/mem walks straight around the filter.
  std::string body = R"(
    (memory 1)
    (data (i32.const 64) "/proc/self/../self/mem\00")
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $open (i64.const 64) (i64.const 0) (i64.const 0)))))
  )";
  ExpectWaliMain(body, EACCES);
}

TEST(WaliFs, PathAllowedNormalizesEvasiveSpellings) {
  // Direct unit coverage of the filter across evasive spellings.
  EXPECT_FALSE(wali::PathAllowed("/proc/self/mem"));
  EXPECT_FALSE(wali::PathAllowed("/proc/self/../self/mem"));
  EXPECT_FALSE(wali::PathAllowed("/proc//self//mem"));
  EXPECT_FALSE(wali::PathAllowed("/proc/self/./mem"));
  EXPECT_FALSE(wali::PathAllowed("/etc/../proc/self/mem"));
  EXPECT_FALSE(wali::PathAllowed("/proc/1234/maps"));
  EXPECT_FALSE(wali::PathAllowed("/proc/self/task/77/mem"));
  EXPECT_FALSE(wali::PathAllowed("/proc/self/map_files"));
  EXPECT_FALSE(wali::PathAllowed("/proc/self/map_files/0-0"));
  EXPECT_FALSE(wali::PathAllowed("/proc/self/pagemap"));

  EXPECT_TRUE(wali::PathAllowed("/proc/self/cmdline"));
  EXPECT_TRUE(wali::PathAllowed("/proc/self/status"));
  EXPECT_TRUE(wali::PathAllowed("/proc/cpuinfo"));
  EXPECT_TRUE(wali::PathAllowed("/tmp/mem"));
  EXPECT_TRUE(wali::PathAllowed("/proc/self/mem/..")) << "resolves to /proc/self";
  EXPECT_TRUE(wali::PathAllowed("relative/path"));
}

TEST(WaliFs, RelativePathsAnchoredAtCwd) {
  // ../../proc/self/mem resolves against the cwd exactly like the kernel
  // would; enough `..`s clamp at the root from any depth.
  std::string deep;
  for (int i = 0; i < 16; ++i) deep += "../";
  EXPECT_FALSE(wali::PathAllowed(deep + "proc/self/mem"));
  EXPECT_TRUE(wali::PathAllowed(deep + "tmp/ok"));
}

TEST(WaliFs, PathAllowedAtResolvesDirfd) {
  // The two-step escape: open /proc/self (allowed), then openat(fd, "mem").
  int dirfd = ::open("/proc/self", O_RDONLY | O_DIRECTORY);
  ASSERT_GE(dirfd, 0);
  EXPECT_FALSE(wali::PathAllowedAt(dirfd, "mem"));
  EXPECT_FALSE(wali::PathAllowedAt(dirfd, "task/1/mem"));
  EXPECT_TRUE(wali::PathAllowedAt(dirfd, "status"));
  ::close(dirfd);
  EXPECT_TRUE(wali::PathAllowedAt(AT_FDCWD, "somefile"));
  EXPECT_FALSE(wali::PathAllowedAt(AT_FDCWD, "/proc/self/mem"));
}

TEST(WaliFs, OpenatDirfdEscapeBlockedEndToEnd) {
  // Guest opens /proc/self, then tries openat(dirfd, "mem"): the second
  // step must fail with EACCES even though both strings look innocent.
  std::string body = R"(
    (memory 1)
    (data (i32.const 64) "/proc/self\00")
    (data (i32.const 96) "mem\00")
    (func (export "main") (result i32)
      (local $dirfd i64)
      ;; O_RDONLY|O_DIRECTORY = 0x10000 in the portable flag space may vary;
      ;; plain O_RDONLY works for open(2) on a directory.
      (local.set $dirfd (call $open (i64.const 64) (i64.const 0) (i64.const 0)))
      (if (i64.lt_s (local.get $dirfd) (i64.const 0)) (then (return (i32.const 1))))
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $openat (local.get $dirfd) (i64.const 96)
                               (i64.const 0) (i64.const 0)))))
  )";
  ExpectWaliMain(body, EACCES);
}

TEST(WaliFs, NormalizePathLexicalRules) {
  EXPECT_EQ(wali::NormalizePath("/proc/self/../self/mem"), "/proc/self/mem");
  EXPECT_EQ(wali::NormalizePath("/a//b/./c"), "/a/b/c");
  EXPECT_EQ(wali::NormalizePath("/../.."), "/");
  EXPECT_EQ(wali::NormalizePath("a/../b"), "b");
  EXPECT_EQ(wali::NormalizePath("../a"), "../a");
  EXPECT_EQ(wali::NormalizePath(""), ".");
  EXPECT_EQ(wali::NormalizePath("/"), "/");
}

TEST(WaliFs, SymlinkToBlockedTargetRefused) {
  // A guest must not mint a symlink at /proc/self/mem and open it through
  // the innocent-looking link path: symlink creation itself is filtered.
  std::string link = TempPath("mem_link");
  std::string body = R"(
    (import "wali" "SYS_symlink" (func $symlink (param i64 i64) (result i64)))
    (memory 1)
    (data (i32.const 64) "/proc/self/mem\00")
    (data (i32.const 128) ")" + link + R"(\00")
    (func (export "main") (result i32)
      (i32.wrap_i64 (i64.sub (i64.const 0)
        (call $symlink (i64.const 64) (i64.const 128)))))
  )";
  ExpectWaliMain(body, EACCES);
}

TEST(WaliFs, ProcCmdlineStillAllowed) {
  // Interposition is surgical: other /proc entries pass through.
  std::string body = R"(
    (memory 1)
    (data (i32.const 64) "/proc/self/cmdline\00")
    (func (export "main") (result i32)
      (local $fd i64)
      (local.set $fd (call $open (i64.const 64) (i64.const 0) (i64.const 0)))
      (if (i64.lt_s (local.get $fd) (i64.const 0)) (then (return (i32.const 1))))
      (drop (call $close (local.get $fd)))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliFs, MkdirRmdirUnlink) {
  std::string dir = TempPath("dir");
  std::string body = R"(
    (memory 1)
    (data (i32.const 64) ")" + dir + R"(\00")" + R"()
    (func (export "main") (result i32)
      (if (i64.ne (call $mkdir (i64.const 64) (i64.const 0x1ed)) (i64.const 0))
        (then (return (i32.const 1))))
      (if (i64.ne (call $rmdir (i64.const 64)) (i64.const 0))
        (then (return (i32.const 2))))
      ;; second rmdir must fail with -ENOENT
      (if (i64.ne (call $rmdir (i64.const 64)) (i64.const -2))
        (then (return (i32.const 3))))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliFs, PipeAndDup) {
  // pipe2 -> write through dup'ed fd -> read from the other end.
  std::string body = R"(
    (memory 1)
    (data (i32.const 256) "xyz!")
    (func (export "main") (result i32)
      (local $r i64) (local $w i64) (local $w2 i64)
      (if (i64.ne (call $pipe2 (i64.const 64) (i64.const 0)) (i64.const 0))
        (then (return (i32.const 1))))
      (local.set $r (i64.extend_i32_u (i32.load (i32.const 64))))
      (local.set $w (i64.extend_i32_u (i32.load (i32.const 68))))
      (local.set $w2 (call $dup (local.get $w)))
      (if (i64.lt_s (local.get $w2) (i64.const 0)) (then (return (i32.const 2))))
      (if (i64.ne (call $write (local.get $w2) (i64.const 256) (i64.const 4))
                  (i64.const 4))
        (then (return (i32.const 3))))
      (if (i64.ne (call $read (local.get $r) (i64.const 512) (i64.const 16))
                  (i64.const 4))
        (then (return (i32.const 4))))
      (if (i32.ne (i32.load (i32.const 512)) (i32.load (i32.const 256)))
        (then (return (i32.const 5))))
      (drop (call $close (local.get $r)))
      (drop (call $close (local.get $w)))
      (drop (call $close (local.get $w2)))
      (i32.const 0))
  )";
  ExpectWaliMain(body, 0);
}

TEST(WaliFs, GetcwdReturnsPath) {
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (local $r i64)
      (local.set $r (call $getcwd (i64.const 1024) (i64.const 512)))
      (if (i64.lt_s (local.get $r) (i64.const 0)) (then (return (i32.const 0))))
      ;; first byte of an absolute path is '/'
      (i32.load8_u (i32.const 1024)))
  )";
  ExpectWaliMain(body, '/');
}

TEST(WaliFs, BadFdReturnsEbadf) {
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (i32.wrap_i64
        (i64.sub (i64.const 0)
                 (call $write (i64.const 987654) (i64.const 0) (i64.const 1)))))
  )";
  ExpectWaliMain(body, EBADF);
}

TEST(WaliFs, SyscallTraceCountsCalls) {
  std::string body = R"(
    (memory 1)
    (func (export "main") (result i32)
      (local $i i32)
      (loop $l
        (drop (call $getpid))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br_if $l (i32.lt_u (local.get $i) (i32.const 25))))
      (i32.const 0))
  )";
  auto world = RunWali(body);
  ASSERT_NE(world.process, nullptr);
  int id = world.runtime->SyscallId("getpid");
  ASSERT_GE(id, 0);
  EXPECT_EQ(world.process->trace.count(static_cast<uint32_t>(id)), 25u);
  EXPECT_GE(world.process->trace.total_calls(), 25u);
}

}  // namespace
