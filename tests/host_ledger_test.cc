// TenantLedger unit tests: accumulation across recycled pool slots (a
// tenant's account outlives the WaliProcess that served each run),
// lossless concurrent charging from many worker threads (exercised under
// the ASan/UBSan CI job), and budget reset semantics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/host/host.h"
#include "tests/wali_test_util.h"

namespace {

std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

TEST(TenantLedger, AccumulatesAcrossRecycledPoolSlots) {
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);
  host::ModuleCache cache;
  host::Supervisor::Options opts;
  opts.workers = 1;
  opts.pool.max_idle_per_module = 1;
  host::Supervisor sup(&runtime, opts);

  // Each run burns a known amount: a short spin plus two syscalls.
  auto module = cache.Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (drop (call $getpid))
      (drop (call $gettid))
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 1000)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  const int kRuns = 5;
  uint64_t fuel_sum = 0, syscall_sum = 0;
  int pooled_runs = 0;
  for (int k = 0; k < kRuns; ++k) {
    host::GuestJob job;
    job.module = *module;
    job.argv = {"acct"};
    job.tenant = "acct";
    host::RunReport r = sup.Submit(std::move(job)).get();
    ASSERT_TRUE(r.completed()) << r.trap_message;
    EXPECT_GT(r.fuel_consumed, 0u);
    fuel_sum += r.fuel_consumed;
    syscall_sum += r.total_syscalls;
    pooled_runs += r.pooled ? 1 : 0;
  }
  // With one worker and one idle slot, every run after the first recycled
  // the same slot — the per-process trace was reset each time, yet the
  // ledger kept the running total.
  EXPECT_GE(pooled_runs, kRuns - 1);
  host::TenantUsage u = sup.ledger().usage("acct");
  EXPECT_EQ(u.runs, static_cast<uint64_t>(kRuns));
  EXPECT_EQ(u.fuel, fuel_sum);
  EXPECT_EQ(u.syscalls, syscall_sum);
  EXPECT_EQ(u.syscalls, static_cast<uint64_t>(2 * kRuns));
  EXPECT_GE(u.mem_high_water_pages, 2u);
  EXPECT_GT(u.cpu_nanos, 0);
}

TEST(TenantLedger, ConcurrentChargesAreLossless) {
  host::TenantLedger ledger;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      for (int k = 0; k < kChargesPerThread; ++k) {
        host::TenantUsage delta;
        delta.runs = 1;
        delta.fuel = 3;
        delta.cpu_nanos = 2;
        delta.syscalls = 5;
        // Max-merged: the final high-water must be the global max, not the
        // last writer's value.
        delta.mem_high_water_pages = static_cast<uint64_t>(t * 100 + (k % 7));
        ledger.Charge("shared", delta);
        ledger.Charge("private-" + std::to_string(t), delta);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  host::TenantUsage shared = ledger.usage("shared");
  const uint64_t total = static_cast<uint64_t>(kThreads) * kChargesPerThread;
  EXPECT_EQ(shared.runs, total);
  EXPECT_EQ(shared.fuel, 3 * total);
  EXPECT_EQ(shared.cpu_nanos, static_cast<int64_t>(2 * total));
  EXPECT_EQ(shared.syscalls, 5 * total);
  EXPECT_EQ(shared.mem_high_water_pages,
            static_cast<uint64_t>((kThreads - 1) * 100 + 6));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ledger.usage("private-" + std::to_string(t)).runs,
              static_cast<uint64_t>(kChargesPerThread));
  }
  EXPECT_EQ(ledger.Snapshot().size(), static_cast<size_t>(kThreads + 1));
}

TEST(TenantLedger, BudgetResetSemantics) {
  host::TenantLedger ledger;
  host::TenantBudget budget;
  budget.max_fuel = 100;
  budget.max_syscalls = 10;
  ledger.SetBudget("t", budget);

  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kAdmit);

  host::TenantUsage delta;
  delta.fuel = 100;
  ledger.Charge("t", delta);
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kFuel);

  // Usage reset (billing-period rollover): consumption clears, the budget
  // stays armed.
  ledger.ResetUsage("t");
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kAdmit);
  EXPECT_EQ(ledger.usage("t").fuel, 0u);
  EXPECT_EQ(ledger.budget("t").max_fuel, 100u);

  // Syscall budget trips independently of fuel.
  host::TenantUsage sys;
  sys.syscalls = 10;
  ledger.Charge("t", sys);
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kSyscalls);

  // Raising the budget re-admits without touching usage.
  budget.max_syscalls = 20;
  ledger.SetBudget("t", budget);
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kAdmit);
  EXPECT_EQ(ledger.usage("t").syscalls, 10u);
}

TEST(TenantLedger, RemainingSlicesNeverReportZeroForLimitedTenants) {
  host::TenantLedger ledger;
  // No budget: 0 means unlimited.
  EXPECT_EQ(ledger.RemainingFuel("t"), 0u);
  EXPECT_EQ(ledger.RemainingCpuNanos("t"), 0);

  host::TenantBudget budget;
  budget.max_fuel = 100;
  budget.max_cpu_nanos = 1000;
  ledger.SetBudget("t", budget);
  EXPECT_EQ(ledger.RemainingFuel("t"), 100u);

  host::TenantUsage delta;
  delta.fuel = 40;
  delta.cpu_nanos = 400;
  ledger.Charge("t", delta);
  EXPECT_EQ(ledger.RemainingFuel("t"), 60u);
  EXPECT_EQ(ledger.RemainingCpuNanos("t"), 600);

  // Exhausted (or overdrawn): 1 unit, never the 0 that means "no cap".
  delta.fuel = 100;
  delta.cpu_nanos = 1000;
  ledger.Charge("t", delta);
  EXPECT_EQ(ledger.RemainingFuel("t"), 1u);
  EXPECT_EQ(ledger.RemainingCpuNanos("t"), 1);
}

TEST(TenantLedger, ReservationsSplitBudgetAndSettleToActuals) {
  host::TenantLedger ledger;
  host::TenantBudget budget;
  budget.max_fuel = 1000;
  budget.max_cpu_nanos = 500;
  budget.max_syscalls = 50;
  ledger.SetBudget("t", budget);

  // First reservation (unknown demand) takes the whole unreserved
  // remainder — but usage and Admit see only real consumption, so the
  // in-flight reservation neither inflates telemetry nor blocks admission.
  host::TenantLedger::RunReservation r1 = ledger.ReserveSlices("t");
  EXPECT_EQ(r1.fuel, 1000u);
  EXPECT_EQ(r1.cpu_nanos, 500);
  EXPECT_EQ(r1.syscalls, 50u);
  EXPECT_EQ(ledger.usage("t").fuel, 0u);
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kAdmit);
  EXPECT_EQ(ledger.RemainingFuel("t"), 1u)
      << "the remainder is held by the live reservation";

  // A concurrent second reservation gets the 1-unit exhausted slice, not
  // the full budget again.
  host::TenantLedger::RunReservation r2 = ledger.ReserveSlices("t");
  EXPECT_EQ(r2.fuel, 1u);
  EXPECT_EQ(r2.syscalls, 1u);

  // Settling releases the reservation and charges actual consumption.
  host::TenantUsage a1;
  a1.fuel = 300;
  a1.cpu_nanos = 100;
  a1.syscalls = 7;
  ledger.SettleSlices("t", r1, a1);
  host::TenantUsage a2;
  a2.fuel = 2;
  ledger.SettleSlices("t", r2, a2);
  host::TenantUsage u = ledger.usage("t");
  EXPECT_EQ(u.fuel, 302u);
  EXPECT_EQ(u.cpu_nanos, 100);
  EXPECT_EQ(u.syscalls, 7u);
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kAdmit);
  EXPECT_EQ(ledger.RemainingSyscalls("t"), 43u);
  EXPECT_EQ(ledger.RemainingFuel("t"), 698u);

  // Unbudgeted tenants reserve nothing and settle as a plain charge.
  host::TenantLedger::RunReservation free = ledger.ReserveSlices("free");
  EXPECT_EQ(free.fuel, 0u);
  host::TenantUsage af;
  af.fuel = 123;
  ledger.SettleSlices("free", free, af);
  EXPECT_EQ(ledger.usage("free").fuel, 123u);
}

TEST(TenantLedger, DemandBoundedReservationsAllowConcurrentRuns) {
  // The reviewer scenario for hard budgets under concurrency: a tenant
  // with ample budget and per-run fuel caps must be able to hold several
  // live reservations at once, each sized to its demand.
  host::TenantLedger ledger;
  host::TenantBudget budget;
  budget.max_fuel = 1000;
  ledger.SetBudget("t", budget);

  host::TenantLedger::RunReservation r1 = ledger.ReserveSlices("t", 100);
  host::TenantLedger::RunReservation r2 = ledger.ReserveSlices("t", 100);
  EXPECT_EQ(r1.fuel, 100u);
  EXPECT_EQ(r2.fuel, 100u);
  EXPECT_EQ(ledger.RemainingFuel("t"), 800u);

  // Demand larger than the unreserved remainder is clipped to it.
  host::TenantLedger::RunReservation r3 = ledger.ReserveSlices("t", 5000);
  EXPECT_EQ(r3.fuel, 800u);
  EXPECT_EQ(ledger.RemainingFuel("t"), 1u);

  host::TenantUsage a;
  a.fuel = 90;
  ledger.SettleSlices("t", r1, a);
  ledger.SettleSlices("t", r2, a);
  ledger.SettleSlices("t", r3, a);
  EXPECT_EQ(ledger.usage("t").fuel, 270u);
  EXPECT_EQ(ledger.RemainingFuel("t"), 730u);
}

TEST(TenantLedger, ForgetDropsTenantEntirely) {
  host::TenantLedger ledger;
  host::TenantBudget budget;
  budget.max_fuel = 10;
  ledger.SetBudget("t", budget);
  host::TenantUsage delta;
  delta.fuel = 10;
  ledger.Charge("t", delta);
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kFuel);

  ledger.Forget("t");
  EXPECT_EQ(ledger.Admit("t"), host::TenantLedger::Verdict::kAdmit);
  EXPECT_TRUE(ledger.budget("t").Unlimited());
  EXPECT_TRUE(ledger.Snapshot().empty());
}

TEST(TenantLedger, UnknownTenantIsUnbudgeted) {
  host::TenantLedger ledger;
  EXPECT_EQ(ledger.Admit("nobody"), host::TenantLedger::Verdict::kAdmit);
  EXPECT_EQ(ledger.usage("nobody").runs, 0u);
  EXPECT_TRUE(ledger.budget("nobody").Unlimited());
  EXPECT_TRUE(ledger.Snapshot().empty());
}

}  // namespace
