// RTOS simulator + WAZI kernel interface tests (§5.1): kernel services,
// device I/O from Wasm guests, instance-per-thread k_thread_create, and the
// auto-generated binding surface.
#include <gtest/gtest.h>

#include <thread>

#include "src/rtos/kernel.h"
#include "src/wazi/wazi.h"
#include "src/wasm/wasm.h"

namespace {

// ---- RTOS kernel unit tests ----

TEST(Rtos, SemaphoreBasics) {
  rtos::Semaphore sem(1, 2);
  EXPECT_EQ(sem.Take(rtos::kNoWait), rtos::kOk);
  EXPECT_EQ(sem.Take(rtos::kNoWait), rtos::kEbusy);
  sem.Give();
  sem.Give();
  sem.Give();  // capped at limit 2
  EXPECT_EQ(sem.Count(), 2u);
}

TEST(Rtos, SemaphoreCrossThreadWakeup) {
  rtos::Semaphore sem(0, 1);
  std::thread giver([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sem.Give();
  });
  EXPECT_EQ(sem.Take(1000), rtos::kOk);
  giver.join();
}

TEST(Rtos, SemaphoreTimeout) {
  rtos::Semaphore sem(0, 1);
  EXPECT_EQ(sem.Take(5), rtos::kEagain);
}

TEST(Rtos, MutexOwnership) {
  rtos::Mutex mu;
  EXPECT_EQ(mu.Lock(rtos::kForever), rtos::kOk);
  EXPECT_EQ(mu.Unlock(), rtos::kOk);
  // Unlocking when not owner fails.
  EXPECT_EQ(mu.Unlock(), rtos::kEinval);
}

TEST(Rtos, MsgQueueFifoAndBlocking) {
  rtos::MsgQueue q(8, 2);
  uint64_t a = 111, b = 222, out = 0;
  EXPECT_EQ(q.Put(&a, rtos::kNoWait), rtos::kOk);
  EXPECT_EQ(q.Put(&b, rtos::kNoWait), rtos::kOk);
  uint64_t c = 333;
  EXPECT_EQ(q.Put(&c, rtos::kNoWait), rtos::kEagain);  // full
  EXPECT_EQ(q.NumUsed(), 2u);
  EXPECT_EQ(q.Get(&out, rtos::kNoWait), rtos::kOk);
  EXPECT_EQ(out, 111u);
  EXPECT_EQ(q.Get(&out, rtos::kNoWait), rtos::kOk);
  EXPECT_EQ(out, 222u);
  EXPECT_EQ(q.Get(&out, rtos::kNoWait), rtos::kEagain);  // empty
}

TEST(Rtos, KernelObjectsAndDevices) {
  rtos::Kernel kernel;
  int64_t sem = kernel.SemCreate(0, 5);
  EXPECT_GT(sem, 0);
  EXPECT_NE(kernel.Sem(sem), nullptr);
  EXPECT_EQ(kernel.Sem(9999), nullptr);

  EXPECT_GT(kernel.DeviceGetBinding("uart0"), 0);
  EXPECT_GT(kernel.DeviceGetBinding("gpio0"), 0);
  EXPECT_GT(kernel.DeviceGetBinding("temp0"), 0);
  EXPECT_EQ(kernel.DeviceGetBinding("nope"), rtos::kEnodev);

  EXPECT_GE(kernel.UptimeMs(), 0);
}

TEST(Rtos, GpioToggleCounting) {
  rtos::GpioDevice gpio("g", 8);
  EXPECT_EQ(gpio.Configure(3, 1), rtos::kOk);
  gpio.Set(3, 1);
  gpio.Set(3, 0);
  gpio.Set(3, 1);
  gpio.Set(3, 1);  // no toggle
  EXPECT_EQ(gpio.toggle_count(3), 3u);
  EXPECT_EQ(gpio.Get(3), 1);
  EXPECT_EQ(gpio.Set(99, 1), rtos::kEinval);
}

TEST(Rtos, SensorDeterministicSawtooth) {
  rtos::SensorDevice s("t");
  EXPECT_EQ(s.ChannelGet(0), rtos::kEinval);  // no sample yet
  s.SampleFetch();
  int64_t v1 = s.ChannelGet(0);
  EXPECT_GE(v1, 20000);
  EXPECT_LT(v1, 30000);
  s.SampleFetch();
  EXPECT_NE(s.ChannelGet(0), v1);
}

TEST(Rtos, SyscallEncodingTableShape) {
  const auto& table = rtos::SyscallEncoding();
  EXPECT_GE(table.size(), 25u);
  int device_calls = 0;
  for (const auto& d : table) {
    if (std::string(d.group) == "device") ++device_calls;
    EXPECT_GE(d.nargs, 0);
    EXPECT_LE(d.nargs, 6);
  }
  EXPECT_GE(device_calls, 8);
}

// ---- WAZI integration ----

struct WaziWorld {
  rtos::Kernel kernel;
  wasm::Linker linker;
  std::unique_ptr<wazi::WaziRuntime> runtime;
  std::unique_ptr<wazi::WaziProcess> process;
  wasm::RunResult result;
};

void RunWazi(WaziWorld& world, const std::string& wat) {
  auto parsed = wasm::ParseAndValidateWat(wat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  world.runtime = std::make_unique<wazi::WaziRuntime>(&world.linker, &world.kernel);
  auto proc = world.runtime->CreateProcess(*parsed);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  world.process = std::move(*proc);
  world.result = world.runtime->RunMain(*world.process);
}

TEST(Wazi, AllEncodedSyscallsAreBound) {
  rtos::Kernel kernel;
  wasm::Linker linker;
  wazi::WaziRuntime runtime(&linker, &kernel);
  EXPECT_EQ(runtime.num_bound_syscalls(),
            static_cast<int>(rtos::SyscallEncoding().size()));
  // Every encoded name resolves as a host function.
  for (const auto& d : rtos::SyscallEncoding()) {
    EXPECT_FALSE(linker.FindFunc("wazi", d.name).IsNull()) << d.name;
  }
}

TEST(Wazi, HelloUartConsole) {
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "device_get_binding" (func $bind (param i64) (result i64)))
    (import "wazi" "uart_poll_out" (func $putc (param i64 i64) (result i64)))
    (memory 1)
    (data (i32.const 64) "uart0\00")
    (data (i32.const 128) "hello zephyr")
    (func (export "main") (result i32)
      (local $dev i64) (local $i i32)
      (local.set $dev (call $bind (i64.const 64)))
      (if (i64.le_s (local.get $dev) (i64.const 0)) (then (return (i32.const 1))))
      (block $done
        (loop $l
          (br_if $done (i32.ge_u (local.get $i) (i32.const 12)))
          (drop (call $putc (local.get $dev)
                      (i64.extend_i32_u
                        (i32.load8_u (i32.add (i32.const 128) (local.get $i))))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
      (i32.const 0))
  ))");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.kernel.Console()->TakeOutput(), "hello zephyr");
}

TEST(Wazi, BlinkGpioAndUptime) {
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "device_get_binding" (func $bind (param i64) (result i64)))
    (import "wazi" "gpio_pin_configure" (func $cfg (param i64 i64 i64) (result i64)))
    (import "wazi" "gpio_pin_set" (func $set (param i64 i64 i64) (result i64)))
    (import "wazi" "gpio_pin_get" (func $get (param i64 i64) (result i64)))
    (import "wazi" "k_uptime_get" (func $uptime (result i64)))
    (memory 1)
    (data (i32.const 64) "gpio0\00")
    (func (export "main") (result i32)
      (local $dev i64) (local $i i32)
      (local.set $dev (call $bind (i64.const 64)))
      (drop (call $cfg (local.get $dev) (i64.const 5) (i64.const 1)))
      (block $done
        (loop $blink
          (br_if $done (i32.ge_u (local.get $i) (i32.const 10)))
          (drop (call $set (local.get $dev) (i64.const 5)
                      (i64.extend_i32_u (i32.and (local.get $i) (i32.const 1)))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $blink)))
      (if (i64.lt_s (call $uptime) (i64.const 0)) (then (return (i32.const 9))))
      (i32.wrap_i64 (call $get (local.get $dev) (i64.const 5))))
  ))");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), 1u);  // ended high (i=9 odd)
  auto* gpio = dynamic_cast<rtos::GpioDevice*>(
      world.kernel.DeviceByHandle(world.kernel.DeviceGetBinding("gpio0")));
  ASSERT_NE(gpio, nullptr);
  EXPECT_GE(gpio->toggle_count(5), 8u);
}

TEST(Wazi, SensorSamplingLoop) {
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "device_get_binding" (func $bind (param i64) (result i64)))
    (import "wazi" "sensor_sample_fetch" (func $fetch (param i64) (result i64)))
    (import "wazi" "sensor_channel_get" (func $chan (param i64 i64) (result i64)))
    (memory 1)
    (data (i32.const 64) "temp0\00")
    (func (export "main") (result i32)
      (local $dev i64) (local $i i32) (local $sum i64)
      (local.set $dev (call $bind (i64.const 64)))
      (block $done
        (loop $sample
          (br_if $done (i32.ge_u (local.get $i) (i32.const 5)))
          (drop (call $fetch (local.get $dev)))
          (local.set $sum (i64.add (local.get $sum)
                                   (call $chan (local.get $dev) (i64.const 0))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $sample)))
      ;; average reading must be a plausible milli-degree value
      (i32.wrap_i64 (i64.div_s (local.get $sum) (i64.const 5))))
  ))");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_GE(world.result.values[0].i32(), 20000u);
  EXPECT_LT(world.result.values[0].i32(), 30000u);
}

TEST(Wazi, SemaphoreHandshakeAcrossKThreads) {
  // Producer thread gives a semaphore 5 times; main takes 5 times and
  // counts. Exercises the instance-per-thread model on the RTOS side.
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "k_sem_create" (func $sem_create (param i64 i64) (result i64)))
    (import "wazi" "k_sem_take" (func $sem_take (param i64 i64) (result i64)))
    (import "wazi" "k_sem_give" (func $sem_give (param i64) (result i64)))
    (import "wazi" "k_thread_create" (func $spawn (param i64 i64 i64) (result i64)))
    (import "wazi" "k_thread_join" (func $join (param i64 i64) (result i64)))
    (import "wazi" "k_yield" (func $yield (result i64)))
    (memory 1 4 shared)
    (table 4 funcref)
    ;; sem handle stored at 256 (shared memory)
    (func $producer (param i32) (result i32)
      (local $i i32) (local $sem i64)
      (local.set $sem (i64.load (i32.const 256)))
      (block $done
        (loop $give
          (br_if $done (i32.ge_u (local.get $i) (i32.const 5)))
          (drop (call $sem_give (local.get $sem)))
          (drop (call $yield))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $give)))
      (i32.const 0))
    (elem (i32.const 1) $producer)
    (func (export "main") (result i32)
      (local $sem i64) (local $tid i64) (local $got i32)
      (local.set $sem (call $sem_create (i64.const 0) (i64.const 5)))
      (i64.store (i32.const 256) (local.get $sem))
      (local.set $tid (call $spawn (i64.const 1) (i64.const 0) (i64.const 5)))
      (if (i64.le_s (local.get $tid) (i64.const 0)) (then (return (i32.const -1))))
      (block $done
        (loop $take
          (br_if $done (i32.ge_u (local.get $got) (i32.const 5)))
          (if (i64.eqz (call $sem_take (local.get $sem) (i64.const 2000)))
            (then (local.set $got (i32.add (local.get $got) (i32.const 1))))
            (else (return (i32.const -2))))
          (br $take)))
      (drop (call $join (local.get $tid) (i64.const -1)))
      (local.get $got))
  ))");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), 5u);
}

TEST(Wazi, MsgQueueThroughKernel) {
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "k_msgq_create" (func $mq_create (param i64 i64) (result i64)))
    (import "wazi" "k_msgq_put" (func $mq_put (param i64 i64 i64) (result i64)))
    (import "wazi" "k_msgq_get" (func $mq_get (param i64 i64 i64) (result i64)))
    (import "wazi" "k_msgq_num_used_get" (func $mq_used (param i64) (result i64)))
    (memory 1)
    (func (export "main") (result i32)
      (local $q i64)
      (local.set $q (call $mq_create (i64.const 8) (i64.const 4)))
      (i64.store (i32.const 512) (i64.const 777))
      (if (i64.ne (call $mq_put (local.get $q) (i64.const 512) (i64.const 0))
                  (i64.const 0))
        (then (return (i32.const 1))))
      (if (i64.ne (call $mq_used (local.get $q)) (i64.const 1))
        (then (return (i32.const 2))))
      (if (i64.ne (call $mq_get (local.get $q) (i64.const 640) (i64.const 0))
                  (i64.const 0))
        (then (return (i32.const 3))))
      (i32.wrap_i64 (i64.load (i32.const 640))))
  ))");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone) << world.result.trap_message;
  EXPECT_EQ(world.result.values[0].i32(), 777u);
}

TEST(Wazi, OopsTrapsAndCountsFault) {
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "k_oops" (func $oops (result i64)))
    (memory 1)
    (func (export "main") (result i32)
      (drop (call $oops))
      (i32.const 0))
  ))");
  EXPECT_EQ(world.result.trap, wasm::TrapKind::kHostError);
  EXPECT_EQ(world.kernel.faults(), 1u);
}

TEST(Wazi, OutOfBoundsPointerRejected) {
  // Recipe step (2): addresses crossing the boundary are sandboxed.
  WaziWorld world;
  RunWazi(world, R"((module
    (import "wazi" "uart_poll_in" (func $getc (param i64 i64) (result i64)))
    (import "wazi" "device_get_binding" (func $bind (param i64) (result i64)))
    (memory 1)
    (data (i32.const 64) "uart0\00")
    (func (export "main") (result i32)
      (i32.wrap_i64 (call $getc (call $bind (i64.const 64)) (i64.const 0x7FFFFFFF))))
  ))");
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone);
  EXPECT_EQ(static_cast<int32_t>(world.result.values[0].i32()), rtos::kEinval);
}

}  // namespace
