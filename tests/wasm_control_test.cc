// Control flow: blocks/loops/if, branching with values, br_table, calls,
// call_indirect signature checks (paper Table 1 'bash' note), recursion depth
// and fuel limits.
#include <gtest/gtest.h>

#include "tests/wat_test_util.h"

namespace {

using wasm::ExecOptions;
using wasm::TrapKind;
using wasm::Value;
using wasm_test::ExpectI32;
using wasm_test::ExpectTrap;
using wasm_test::RunWat;

TEST(Control, IfElse) {
  const char* wat = R"((module
    (func (export "pick") (param i32) (result i32)
      (if (result i32) (local.get 0)
        (then (i32.const 10))
        (else (i32.const 20))))
  ))";
  ExpectI32(wat, "pick", {Value::I32(1)}, 10);
  ExpectI32(wat, "pick", {Value::I32(0)}, 20);
}

TEST(Control, PlainFormLoopSum) {
  // sum 1..n with plain (non-folded) instructions.
  const char* wat = R"((module
    (func (export "sum") (param $n i32) (result i32)
      (local $acc i32) (local $i i32)
      block $exit
        loop $top
          local.get $i
          local.get $n
          i32.ge_u
          br_if $exit
          local.get $i
          i32.const 1
          i32.add
          local.tee $i
          local.get $acc
          i32.add
          local.set $acc
          br $top
        end
      end
      local.get $acc)
  ))";
  ExpectI32(wat, "sum", {Value::I32(0)}, 0);
  ExpectI32(wat, "sum", {Value::I32(1)}, 1);
  ExpectI32(wat, "sum", {Value::I32(10)}, 55);
  ExpectI32(wat, "sum", {Value::I32(1000)}, 500500);
}

TEST(Control, BlockWithResultAndBr) {
  const char* wat = R"((module
    (func (export "f") (param i32) (result i32)
      block $b (result i32)
        i32.const 1
        local.get 0
        br_if $b
        drop
        i32.const 2
      end)
  ))";
  ExpectI32(wat, "f", {Value::I32(1)}, 1);
  ExpectI32(wat, "f", {Value::I32(0)}, 2);
}

TEST(Control, BrTable) {
  const char* wat = R"((module
    (func (export "classify") (param i32) (result i32)
      block $default
        block $two
          block $one
            block $zero
              local.get 0
              br_table $zero $one $two $default
            end
            i32.const 100
            return
          end
          i32.const 101
          return
        end
        i32.const 102
        return
      end
      i32.const 103)
  ))";
  ExpectI32(wat, "classify", {Value::I32(0)}, 100);
  ExpectI32(wat, "classify", {Value::I32(1)}, 101);
  ExpectI32(wat, "classify", {Value::I32(2)}, 102);
  ExpectI32(wat, "classify", {Value::I32(3)}, 103);
  ExpectI32(wat, "classify", {Value::I32(1000)}, 103);
}

TEST(Control, NestedLoopsBreakOuter) {
  const char* wat = R"((module
    (func (export "f") (result i32)
      (local $i i32) (local $j i32) (local $count i32)
      block $out
        loop $outer
          local.get $i i32.const 10 i32.ge_u br_if $out
          i32.const 0 local.set $j
          loop $inner
            local.get $j i32.const 10 i32.ge_u
            if
              local.get $i i32.const 1 i32.add local.set $i
              br $outer
            end
            local.get $count i32.const 1 i32.add local.set $count
            local.get $j i32.const 1 i32.add local.set $j
            br $inner
          end
        end
      end
      local.get $count)
  ))";
  ExpectI32(wat, "f", {}, 100);
}

TEST(Control, RecursionFibAndStackLimit) {
  const char* wat = R"((module
    (func $fib (export "fib") (param i32) (result i32)
      (if (result i32) (i32.lt_u (local.get 0) (i32.const 2))
        (then (local.get 0))
        (else (i32.add
          (call $fib (i32.sub (local.get 0) (i32.const 1)))
          (call $fib (i32.sub (local.get 0) (i32.const 2)))))))
    (func $inf (export "inf") (result i32) (call $inf))
  ))";
  ExpectI32(wat, "fib", {Value::I32(10)}, 55);
  ExpectI32(wat, "fib", {Value::I32(20)}, 6765);
  ExpectTrap(wat, "inf", {}, TrapKind::kStackExhausted);
}

TEST(Control, FuelLimitStopsRunawayLoop) {
  const char* wat = R"((module
    (func (export "spin")
      loop $l br $l end)
  ))";
  ExecOptions opts;
  opts.fuel = 10000;
  auto r = RunWat(wat, "spin", {}, opts);
  EXPECT_EQ(r.trap, TrapKind::kFuelExhausted);
  EXPECT_GE(r.executed_instrs, 10000u);
}

TEST(Control, UnreachableTraps) {
  ExpectTrap("(module (func (export \"f\") unreachable))", "f", {},
             TrapKind::kUnreachable);
}

TEST(Control, CallIndirectDispatch) {
  const char* wat = R"((module
    (type $binop (func (param i32 i32) (result i32)))
    (table 4 funcref)
    (func $add (type $binop) (i32.add (local.get 0) (local.get 1)))
    (func $sub (type $binop) (i32.sub (local.get 0) (local.get 1)))
    (func $mul (type $binop) (i32.mul (local.get 0) (local.get 1)))
    (elem (i32.const 0) $add $sub $mul)
    (func (export "dispatch") (param i32 i32 i32) (result i32)
      (call_indirect (type $binop) (local.get 1) (local.get 2) (local.get 0)))
  ))";
  ExpectI32(wat, "dispatch", {Value::I32(0), Value::I32(7), Value::I32(3)}, 10);
  ExpectI32(wat, "dispatch", {Value::I32(1), Value::I32(7), Value::I32(3)}, 4);
  ExpectI32(wat, "dispatch", {Value::I32(2), Value::I32(7), Value::I32(3)}, 21);
}

TEST(Control, CallIndirectTraps) {
  // The paper (§4.1) notes WALI surfaces latent type-safety bugs in C code as
  // call_indirect signature mismatch traps — exercise all three trap kinds.
  const char* wat = R"((module
    (type $binop (func (param i32 i32) (result i32)))
    (type $unop (func (param i32) (result i32)))
    (table 4 funcref)
    (func $neg (type $unop) (i32.sub (i32.const 0) (local.get 0)))
    (elem (i32.const 0) $neg)
    (func (export "oob") (result i32)
      (call_indirect (type $binop) (i32.const 1) (i32.const 2) (i32.const 99)))
    (func (export "null") (result i32)
      (call_indirect (type $binop) (i32.const 1) (i32.const 2) (i32.const 2)))
    (func (export "sigmismatch") (result i32)
      (call_indirect (type $binop) (i32.const 1) (i32.const 2) (i32.const 0)))
    (func (export "okay") (result i32)
      (call_indirect (type $unop) (i32.const 5) (i32.const 0)))
  ))";
  ExpectTrap(wat, "oob", {}, TrapKind::kIndirectOob);
  ExpectTrap(wat, "null", {}, TrapKind::kIndirectNull);
  ExpectTrap(wat, "sigmismatch", {}, TrapKind::kIndirectSigMismatch);
  ExpectI32(wat, "okay", {}, static_cast<uint32_t>(-5));
}

TEST(Control, SelectAndDrop) {
  const char* wat = R"((module
    (func (export "sel") (param i32) (result i32)
      (select (i32.const 11) (i32.const 22) (local.get 0)))
    (func (export "dropper") (result i32)
      i32.const 1 i32.const 2 drop)
  ))";
  ExpectI32(wat, "sel", {Value::I32(1)}, 11);
  ExpectI32(wat, "sel", {Value::I32(0)}, 22);
  ExpectI32(wat, "dropper", {}, 1);
}

TEST(Control, GlobalsMutation) {
  const char* wat = R"((module
    (global $counter (mut i32) (i32.const 100))
    (global $k i32 (i32.const 7))
    (func (export "bump") (result i32)
      (global.set $counter (i32.add (global.get $counter) (global.get $k)))
      (global.get $counter))
  ))";
  wasm_test::WatFixture fx = wasm_test::Instantiate(wat);
  ASSERT_NE(fx.instance, nullptr);
  auto r1 = fx.instance->CallExport("bump", {});
  EXPECT_EQ(r1.values[0].i32(), 107u);
  auto r2 = fx.instance->CallExport("bump", {});
  EXPECT_EQ(r2.values[0].i32(), 114u);
}

TEST(Control, StartFunctionRuns) {
  const char* wat = R"((module
    (global $g (mut i32) (i32.const 0))
    (func $init (global.set $g (i32.const 42)))
    (start $init)
    (func (export "get") (result i32) (global.get $g))
  ))";
  ExpectI32(wat, "get", {}, 42);
}

TEST(Control, HostFunctionImport) {
  const char* wat = R"((module
    (import "env" "mul3" (func $mul3 (param i32) (result i32)))
    (func (export "f") (param i32) (result i32)
      (call $mul3 (i32.add (local.get 0) (i32.const 1))))
  ))";
  auto fx = wasm_test::Instantiate(wat, [](wasm::Linker& linker) {
    wasm::FuncType t;
    t.params = {wasm::ValType::kI32};
    t.results = {wasm::ValType::kI32};
    linker.DefineHostFunc("env", "mul3", t,
                          [](wasm::ExecContext&, const uint64_t* args, uint64_t* results) {
                            results[0] = static_cast<uint32_t>(args[0] * 3);
                            return wasm::TrapKind::kNone;
                          });
  });
  ASSERT_NE(fx.instance, nullptr);
  auto r = fx.instance->CallExport("f", {Value::I32(5)});
  ASSERT_EQ(r.trap, TrapKind::kNone);
  EXPECT_EQ(r.values[0].i32(), 18u);
}

TEST(Control, ValidatorRejectsBadModules) {
  // Type mismatch: i64 where i32 expected.
  auto bad1 = wasm::ParseAndValidateWat(
      "(module (func (result i32) (i64.const 1)))");
  EXPECT_FALSE(bad1.ok());
  // Branch depth out of range.
  auto bad2 = wasm::ParseAndValidateWat("(module (func br 3))");
  EXPECT_FALSE(bad2.ok());
  // Unknown local.
  auto bad3 = wasm::ParseAndValidateWat("(module (func (local.get 0) drop))");
  EXPECT_FALSE(bad3.ok());
  // Stack underflow.
  auto bad4 = wasm::ParseAndValidateWat("(module (func i32.add drop))");
  EXPECT_FALSE(bad4.ok());
  // if with result but no else.
  auto bad5 = wasm::ParseAndValidateWat(
      "(module (func (result i32) (i32.const 1) (if (result i32) (then (i32.const 2)))))");
  EXPECT_FALSE(bad5.ok());
  // Memory op without memory.
  auto bad6 = wasm::ParseAndValidateWat(
      "(module (func (result i32) (i32.load (i32.const 0))))");
  EXPECT_FALSE(bad6.ok());
}

}  // namespace
