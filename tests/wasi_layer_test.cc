// E2 / claim C2: a complete WASI implementation layered over WALI, passing a
// conformance suite (the artifact's libuvwasi-over-WALI run passes 22 tests;
// this suite is larger). Every WASI call here reaches the kernel only through
// name-bound ("wali", "SYS_*") functions — verified by the layer's
// wali_calls() telemetry.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "src/wali/wali.h"
#include "src/wasi/wasi_layer.h"
#include "src/wasm/wasm.h"

namespace {

// WASI imports used by guest programs in this suite.
const char* kWasiPrelude = R"(
  (import "wasi_snapshot_preview1" "args_sizes_get" (func $args_sizes_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "args_get" (func $args_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "environ_sizes_get" (func $environ_sizes_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "environ_get" (func $environ_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "clock_time_get" (func $clock_time_get (param i32 i64 i32) (result i32)))
  (import "wasi_snapshot_preview1" "clock_res_get" (func $clock_res_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_close" (func $fd_close (param i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_read" (func $fd_read (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_write" (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_seek" (func $fd_seek (param i32 i64 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_tell" (func $fd_tell (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_filestat_get" (func $fd_filestat_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_fdstat_get" (func $fd_fdstat_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_prestat_get" (func $fd_prestat_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_prestat_dir_name" (func $fd_prestat_dir_name (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_renumber" (func $fd_renumber (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_sync" (func $fd_sync (param i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_open" (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_create_directory" (func $path_mkdir (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_remove_directory" (func $path_rmdir (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_unlink_file" (func $path_unlink (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_filestat_get" (func $path_filestat_get (param i32 i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_rename" (func $path_rename (param i32 i32 i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "random_get" (func $random_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "sched_yield" (func $wasi_sched_yield (result i32)))
  (import "wasi_snapshot_preview1" "proc_exit" (func $proc_exit (param i32)))
)";

class WasiLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sandbox_ = testing::TempDir() + "/wasi_sandbox_" + std::to_string(getpid()) +
               "_" + std::to_string(counter_++);
    ASSERT_EQ(mkdir(sandbox_.c_str(), 0755), 0);
  }

  void TearDown() override {
    std::string cmd = "rm -rf " + sandbox_;
    ASSERT_EQ(system(cmd.c_str()), 0);
  }

  // Runs a guest whose exported main returns an i32; preopen fd is 3+ for
  // the sandbox dir (discoverable via fd_prestat_get, but tests may assume
  // the first preopen).
  uint32_t RunGuest(const std::string& body, std::vector<std::string> argv = {"app"},
                    std::vector<std::string> env = {}) {
    std::string wat = std::string("(module ") + kWasiPrelude + body + ")";
    auto parsed = wasm::ParseAndValidateWat(wat);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return 0xDEAD;
    linker_ = std::make_unique<wasm::Linker>();
    runtime_ = std::make_unique<wali::WaliRuntime>(linker_.get());
    wasi::WasiLayer::Options opts;
    opts.preopens.push_back({"/sandbox", sandbox_});
    layer_ = std::make_unique<wasi::WasiLayer>(linker_.get(), opts);
    auto proc = runtime_->CreateProcess(*parsed, std::move(argv), std::move(env));
    EXPECT_TRUE(proc.ok()) << proc.status().ToString();
    if (!proc.ok()) return 0xDEAD;
    process_ = std::move(*proc);
    wasm::RunResult r = runtime_->RunMain(*process_);
    if (r.trap == wasm::TrapKind::kExit) {
      return static_cast<uint32_t>(r.exit_code);
    }
    EXPECT_EQ(r.trap, wasm::TrapKind::kNone)
        << wasm::TrapKindName(r.trap) << " " << r.trap_message;
    if (r.values.size() != 1) return 0xDEAD;
    return r.values[0].i32();
  }

  // The preopen fd for /sandbox: discovered by probing prestat on fds 3..16.
  // Guests inline this loop; host-side helper used for expectations only.
  std::string sandbox_;
  std::unique_ptr<wasm::Linker> linker_;
  std::unique_ptr<wali::WaliRuntime> runtime_;
  std::unique_ptr<wasi::WasiLayer> layer_;
  std::unique_ptr<wali::WaliProcess> process_;
  static int counter_;
};

int WasiLayerTest::counter_ = 0;

// Guest helper: finds the first preopen fd by probing fd_prestat_get, leaves
// it in $dirfd. Included in guests that need the sandbox.
const char* kFindPreopen = R"(
  (func $find_preopen (result i32)
    (local $fd i32)
    (local.set $fd (i32.const 3))
    (block $found
      (loop $probe
        (br_if $found (i32.eqz (call $fd_prestat_get (local.get $fd) (i32.const 8000))))
        (local.set $fd (i32.add (local.get $fd) (i32.const 1)))
        (br_if $probe (i32.lt_u (local.get $fd) (i32.const 32)))))
    (local.get $fd))
)";

TEST_F(WasiLayerTest, FdWriteToStdout) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (data (i32.const 100) "wasi says hi\n")
    (func (export "main") (result i32)
      ;; iovec at 64: base=100 len=13
      (i32.store (i32.const 64) (i32.const 100))
      (i32.store (i32.const 68) (i32.const 13))
      (if (i32.ne (call $fd_write (i32.const 1) (i32.const 64) (i32.const 1) (i32.const 80))
                  (i32.const 0))
        (then (return (i32.const 1))))
      (i32.load (i32.const 80)))
  )");
  EXPECT_EQ(r, 13u);
}

TEST_F(WasiLayerTest, ArgsRoundtrip) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i32.ne (call $args_sizes_get (i32.const 64) (i32.const 68)) (i32.const 0))
        (then (return (i32.const 100))))
      (if (i32.ne (i32.load (i32.const 64)) (i32.const 2))
        (then (return (i32.const 101))))
      (if (i32.ne (call $args_get (i32.const 128) (i32.const 256)) (i32.const 0))
        (then (return (i32.const 102))))
      ;; argv[1] = "xy": read through the pointer table
      (i32.load16_u (i32.load (i32.const 132))))
  )", {"app", "xy"});
  EXPECT_EQ(r, static_cast<uint32_t>('x' | ('y' << 8)));
}

TEST_F(WasiLayerTest, EnvironRoundtrip) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i32.ne (call $environ_sizes_get (i32.const 64) (i32.const 68)) (i32.const 0))
        (then (return (i32.const 100))))
      (if (i32.ne (i32.load (i32.const 64)) (i32.const 1))
        (then (return (i32.const 101))))
      ;; total bytes = len("A=B") + 1
      (i32.load (i32.const 68)))
  )", {"app"}, {"A=B"});
  EXPECT_EQ(r, 4u);
}

TEST_F(WasiLayerTest, ClockTimeMonotonicAdvances) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (drop (call $clock_time_get (i32.const 1) (i64.const 1) (i32.const 64)))
      (loop $spin
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br_if $spin (i32.lt_u (local.get $i) (i32.const 100000))))
      (drop (call $clock_time_get (i32.const 1) (i64.const 1) (i32.const 72)))
      (i64.lt_u (i64.load (i32.const 64)) (i64.load (i32.const 72))))
  )");
  EXPECT_EQ(r, 1u);
}

TEST_F(WasiLayerTest, ClockResNonzero) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i32.ne (call $clock_res_get (i32.const 1) (i32.const 64)) (i32.const 0))
        (then (return (i32.const 100))))
      (i64.ne (i64.load (i32.const 64)) (i64.const 0)))
  )");
  EXPECT_EQ(r, 1u);
}

TEST_F(WasiLayerTest, PreopenDiscovery) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $fd i32)
      (local.set $fd (call $find_preopen))
      (if (i32.ge_u (local.get $fd) (i32.const 32)) (then (return (i32.const 100))))
      ;; prestat at 8000: tag(0)=dir, name_len = len("/sandbox") = 8
      (if (i32.ne (i32.load (i32.const 8000)) (i32.const 0))
        (then (return (i32.const 101))))
      (i32.load (i32.const 8004)))
  )");
  EXPECT_EQ(r, 8u);
}

TEST_F(WasiLayerTest, PrestatDirName) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $fd i32)
      (local.set $fd (call $find_preopen))
      (if (i32.ne (call $fd_prestat_dir_name (local.get $fd) (i32.const 200) (i32.const 8))
                  (i32.const 0))
        (then (return (i32.const 100))))
      ;; "/san"
      (i32.load (i32.const 200)))
  )");
  EXPECT_EQ(r, 0x6E61732Fu);
}

// Shared body: creates "f.txt" in the sandbox with content "abcdef".
const char* kCreateFile = R"(
  (data (i32.const 300) "f.txt")
  (data (i32.const 320) "abcdef")
  (func $create_file (param $dirfd i32) (result i32)
    (local $fd i32)
    ;; path_open(dirfd, 0, "f.txt", 5, O_CREAT(1)|O_TRUNC(8), rights RW, 0, 0, &fd@400)
    (if (i32.ne (call $path_open (local.get $dirfd) (i32.const 0) (i32.const 300)
                      (i32.const 5) (i32.const 9)
                      (i64.const 0x42) (i64.const 0) (i32.const 0) (i32.const 400))
                (i32.const 0))
      (then (return (i32.const -1))))
    (local.set $fd (i32.load (i32.const 400)))
    (i32.store (i32.const 64) (i32.const 320))
    (i32.store (i32.const 68) (i32.const 6))
    (if (i32.ne (call $fd_write (local.get $fd) (i32.const 64) (i32.const 1) (i32.const 80))
                (i32.const 0))
      (then (return (i32.const -2))))
    (local.get $fd))
)";

TEST_F(WasiLayerTest, PathOpenCreateWriteReadBack) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $dirfd i32) (local $fd i32)
      (local.set $dirfd (call $find_preopen))
      (local.set $fd (call $create_file (local.get $dirfd)))
      (if (i32.lt_s (local.get $fd) (i32.const 0)) (then (return (i32.const 100))))
      (drop (call $fd_close (local.get $fd)))
      ;; reopen read-only (rights = fd_read)
      (if (i32.ne (call $path_open (local.get $dirfd) (i32.const 0) (i32.const 300)
                        (i32.const 5) (i32.const 0)
                        (i64.const 2) (i64.const 0) (i32.const 0) (i32.const 400))
                  (i32.const 0))
        (then (return (i32.const 101))))
      (local.set $fd (i32.load (i32.const 400)))
      (i32.store (i32.const 64) (i32.const 600))
      (i32.store (i32.const 68) (i32.const 64))
      (if (i32.ne (call $fd_read (local.get $fd) (i32.const 64) (i32.const 1) (i32.const 80))
                  (i32.const 0))
        (then (return (i32.const 102))))
      (if (i32.ne (i32.load (i32.const 80)) (i32.const 6))
        (then (return (i32.const 103))))
      ;; "abcd"
      (i32.load (i32.const 600)))
  )");
  EXPECT_EQ(r, 0x64636261u);
  // Host-side check the file really exists in the sandbox.
  struct stat st;
  EXPECT_EQ(stat((sandbox_ + "/f.txt").c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 6);
}

TEST_F(WasiLayerTest, PathEscapeRejectedAbsolute) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (data (i32.const 300) "/etc/passwd")
    (func (export "main") (result i32)
      (call $path_open (call $find_preopen) (i32.const 0) (i32.const 300)
            (i32.const 11) (i32.const 0)
            (i64.const 2) (i64.const 0) (i32.const 0) (i32.const 400)))
  )");
  EXPECT_EQ(r, wasi::kEnotcapable);
}

TEST_F(WasiLayerTest, PathEscapeRejectedDotDot) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (data (i32.const 300) "../../etc/passwd")
    (func (export "main") (result i32)
      (call $path_open (call $find_preopen) (i32.const 0) (i32.const 300)
            (i32.const 16) (i32.const 0)
            (i64.const 2) (i64.const 0) (i32.const 0) (i32.const 400)))
  )");
  EXPECT_EQ(r, wasi::kEnotcapable);
}

TEST_F(WasiLayerTest, OpenMissingFileIsNoent) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (data (i32.const 300) "missing.txt")
    (func (export "main") (result i32)
      (call $path_open (call $find_preopen) (i32.const 0) (i32.const 300)
            (i32.const 11) (i32.const 0)
            (i64.const 2) (i64.const 0) (i32.const 0) (i32.const 400)))
  )");
  EXPECT_EQ(r, wasi::kEnoent);
}

TEST_F(WasiLayerTest, FdSeekAndTell) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $fd i32)
      (local.set $fd (call $create_file (call $find_preopen)))
      (if (i32.lt_s (local.get $fd) (i32.const 0)) (then (return (i32.const 100))))
      ;; seek to 2 from start
      (if (i32.ne (call $fd_seek (local.get $fd) (i64.const 2) (i32.const 0) (i32.const 500))
                  (i32.const 0))
        (then (return (i32.const 101))))
      (if (i64.ne (i64.load (i32.const 500)) (i64.const 2))
        (then (return (i32.const 102))))
      (if (i32.ne (call $fd_tell (local.get $fd) (i32.const 500)) (i32.const 0))
        (then (return (i32.const 103))))
      (i32.wrap_i64 (i64.load (i32.const 500))))
  )");
  EXPECT_EQ(r, 2u);
}

TEST_F(WasiLayerTest, FdFilestatSizeAndType) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $fd i32)
      (local.set $fd (call $create_file (call $find_preopen)))
      (if (i32.lt_s (local.get $fd) (i32.const 0)) (then (return (i32.const 100))))
      (if (i32.ne (call $fd_filestat_get (local.get $fd) (i32.const 1024)) (i32.const 0))
        (then (return (i32.const 101))))
      ;; filetype (offset 16) must be regular_file (4)
      (if (i32.ne (i32.load8_u offset=16 (i32.const 1024)) (i32.const 4))
        (then (return (i32.const 102))))
      ;; size (offset 32)
      (i32.wrap_i64 (i64.load offset=32 (i32.const 1024))))
  )");
  EXPECT_EQ(r, 6u);
}

TEST_F(WasiLayerTest, PathFilestatGet) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $dirfd i32)
      (local.set $dirfd (call $find_preopen))
      (drop (call $create_file (local.get $dirfd)))
      (if (i32.ne (call $path_filestat_get (local.get $dirfd) (i32.const 1)
                        (i32.const 300) (i32.const 5) (i32.const 1024))
                  (i32.const 0))
        (then (return (i32.const 100))))
      (i32.wrap_i64 (i64.load offset=32 (i32.const 1024))))
  )");
  EXPECT_EQ(r, 6u);
}

TEST_F(WasiLayerTest, CreateAndRemoveDirectory) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (data (i32.const 300) "subdir")
    (func (export "main") (result i32)
      (local $dirfd i32)
      (local.set $dirfd (call $find_preopen))
      (if (i32.ne (call $path_mkdir (local.get $dirfd) (i32.const 300) (i32.const 6))
                  (i32.const 0))
        (then (return (i32.const 100))))
      ;; directory filestat: filetype dir (3)
      (if (i32.ne (call $path_filestat_get (local.get $dirfd) (i32.const 1)
                        (i32.const 300) (i32.const 6) (i32.const 1024))
                  (i32.const 0))
        (then (return (i32.const 101))))
      (if (i32.ne (i32.load8_u offset=16 (i32.const 1024)) (i32.const 3))
        (then (return (i32.const 102))))
      (if (i32.ne (call $path_rmdir (local.get $dirfd) (i32.const 300) (i32.const 6))
                  (i32.const 0))
        (then (return (i32.const 103))))
      ;; removing again reports ENOENT
      (call $path_rmdir (local.get $dirfd) (i32.const 300) (i32.const 6)))
  )");
  EXPECT_EQ(r, wasi::kEnoent);
}

TEST_F(WasiLayerTest, UnlinkFile) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $dirfd i32)
      (local.set $dirfd (call $find_preopen))
      (drop (call $create_file (local.get $dirfd)))
      (if (i32.ne (call $path_unlink (local.get $dirfd) (i32.const 300) (i32.const 5))
                  (i32.const 0))
        (then (return (i32.const 100))))
      (call $path_unlink (local.get $dirfd) (i32.const 300) (i32.const 5)))
  )");
  EXPECT_EQ(r, wasi::kEnoent);
}

TEST_F(WasiLayerTest, RenameFile) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (data (i32.const 360) "g.txt")
    (func (export "main") (result i32)
      (local $dirfd i32)
      (local.set $dirfd (call $find_preopen))
      (drop (call $create_file (local.get $dirfd)))
      (if (i32.ne (call $path_rename (local.get $dirfd) (i32.const 300) (i32.const 5)
                        (local.get $dirfd) (i32.const 360) (i32.const 5))
                  (i32.const 0))
        (then (return (i32.const 100))))
      ;; old gone, new present
      (if (i32.ne (call $path_filestat_get (local.get $dirfd) (i32.const 1)
                        (i32.const 300) (i32.const 5) (i32.const 1024))
                  (i32.const 44))  ;; ENOENT
        (then (return (i32.const 101))))
      (call $path_filestat_get (local.get $dirfd) (i32.const 1)
            (i32.const 360) (i32.const 5) (i32.const 1024)))
  )");
  EXPECT_EQ(r, 0u);
}

TEST_F(WasiLayerTest, FdstatGetOnStdout) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i32.ne (call $fd_fdstat_get (i32.const 1) (i32.const 1024)) (i32.const 0))
        (then (return (i32.const 100))))
      ;; rights words are all-ones in this layer
      (i64.eqz (i64.xor (i64.load offset=8 (i32.const 1024)) (i64.const -1))))
  )");
  EXPECT_EQ(r, 1u);
}

TEST_F(WasiLayerTest, FdRenumber) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $fd i32)
      (local.set $fd (call $create_file (call $find_preopen)))
      (if (i32.lt_s (local.get $fd) (i32.const 0)) (then (return (i32.const 100))))
      (if (i32.ne (call $fd_renumber (local.get $fd) (i32.const 50)) (i32.const 0))
        (then (return (i32.const 101))))
      ;; fd 50 now works
      (call $fd_sync (i32.const 50)))
  )");
  EXPECT_EQ(r, 0u);
}

TEST_F(WasiLayerTest, RandomGetFillsBuffer) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i32.ne (call $random_get (i32.const 1024) (i32.const 16)) (i32.const 0))
        (then (return (i32.const 100))))
      (i32.eqz (i64.eqz (i64.or (i64.load (i32.const 1024))
                                (i64.load (i32.const 1032))))))
  )");
  EXPECT_EQ(r, 1u);
}

TEST_F(WasiLayerTest, SchedYieldSucceeds) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32) (call $wasi_sched_yield))
  )");
  EXPECT_EQ(r, 0u);
}

TEST_F(WasiLayerTest, ProcExitCode) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (call $proc_exit (i32.const 33))
      (i32.const 0))
  )");
  EXPECT_EQ(r, 33u);
}

TEST_F(WasiLayerTest, BadFdIsWasiEbadf) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (call $fd_close (i32.const 12345)))
  )");
  EXPECT_EQ(r, wasi::kEbadf);
}

TEST_F(WasiLayerTest, ReadFromWriteOnlyStdoutFails) {
  uint32_t r = RunGuest(R"(
    (memory 2)
    (func (export "main") (result i32)
      (i32.store (i32.const 64) (i32.const 1024))
      (i32.store (i32.const 68) (i32.const 4))
      (call $fd_read (i32.const 1) (i32.const 64) (i32.const 1) (i32.const 80)))
  )");
  EXPECT_NE(r, 0u);  // EBADF or EINVAL depending on stdout redirection
}

TEST_F(WasiLayerTest, EverythingRoutedThroughWali) {
  RunGuest(std::string(kFindPreopen) + kCreateFile + R"(
    (memory 2)
    (func (export "main") (result i32)
      (drop (call $create_file (call $find_preopen)))
      (drop (call $random_get (i32.const 1024) (i32.const 8)))
      (drop (call $clock_time_get (i32.const 1) (i64.const 1) (i32.const 64)))
      (i32.const 0))
  )");
  // The layering boundary: WASI ops became WALI calls (mmap for scratch,
  // openat for preopen+file, writev, getrandom, clock_gettime, ...).
  EXPECT_GE(layer_->wali_calls(), 6u);
  // And the process trace shows those exact syscalls.
  int mmap_id = runtime_->SyscallId("mmap");
  int openat_id = runtime_->SyscallId("openat");
  EXPECT_GE(process_->trace.count(static_cast<uint32_t>(mmap_id)), 1u);
  EXPECT_GE(process_->trace.count(static_cast<uint32_t>(openat_id)), 2u);
}

TEST_F(WasiLayerTest, TrailingSlashlessRelativePathsWork) {
  uint32_t r = RunGuest(std::string(kFindPreopen) + R"(
    (memory 2)
    (data (i32.const 300) "a/b")
    (data (i32.const 310) "a")
    (func (export "main") (result i32)
      (local $dirfd i32)
      (local.set $dirfd (call $find_preopen))
      (if (i32.ne (call $path_mkdir (local.get $dirfd) (i32.const 310) (i32.const 1))
                  (i32.const 0))
        (then (return (i32.const 100))))
      (if (i32.ne (call $path_mkdir (local.get $dirfd) (i32.const 300) (i32.const 3))
                  (i32.const 0))
        (then (return (i32.const 101))))
      ;; "a/b" exists and is a dir
      (if (i32.ne (call $path_filestat_get (local.get $dirfd) (i32.const 1)
                        (i32.const 300) (i32.const 3) (i32.const 1024))
                  (i32.const 0))
        (then (return (i32.const 102))))
      (i32.load8_u offset=16 (i32.const 1024)))
  )");
  EXPECT_EQ(r, 3u);  // directory
}

}  // namespace
