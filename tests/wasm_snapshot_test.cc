// Snapshot/restore differential tests (ROADMAP "serializable suspensions").
//
// The core property: for a run that parks at a host-call boundary,
//   park -> SnapshotSuspension -> fresh instance -> RestoreSuspension ->
//   ResumeInvoke
// must be BIT-IDENTICAL to the run that never parked — same trap kind, same
// result bits, same executed_instrs, same final memory and globals — across
// every dispatch mode x fusion level, and across fuel boundaries falling on
// either side of a park. The harness snapshots at EVERY park and restores
// into a completely fresh module+instance (fresh parse, fresh prepare), so
// nothing can leak through except the bytes of the snapshot itself.
//
// Also here: hostile-input decode tests (every truncation and every
// single-bit flip of a valid snapshot must return an error, never crash or
// over-read — run under ASan in CI), the golden format-stability pin
// (accidental layout drift without a kSnapshotVersion bump fails), and the
// process-level differential over the workload suite using the
// WaliProcess::park_after_syscalls scripted-park hook.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/wali/process_snapshot.h"
#include "src/wali/runtime.h"
#include "src/wasm/prepare.h"
#include "src/wasm/snapshot.h"
#include "src/wasm/wasm.h"
#include "src/workloads/workloads.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::DispatchMode;
using wasm::ExecOptions;
using wasm::RunResult;
using wasm::SafepointScheme;
using wasm::TrapKind;
using wasm::Value;

// ---------------------------------------------------------------- kernels --
// Every kernel imports env.step (i64)->(i64); the blocking fixture answers
// step(x) = 3x+1 inline, the parking fixture unwinds with kSyscallPending
// and the harness materializes the same 3x+1 at resume. A loop kernel
// (stores, a mutable global, mid-run memory.grow), a recursion kernel (deep
// frame stacks at the park), and small fixtures for hostile/golden tests.

const char* kLoopKernelWat = R"((module
  (import "env" "step" (func $step (param i64) (result i64)))
  (memory 1 4)
  (global $g (mut i64) (i64.const 0))
  (data (i32.const 16) "snapshot loop kernel")
  (func $inner (param $x i64) (result i64)
    (i64.add (call $step (local.get $x)) (i64.const 7)))
  (func (export "run") (param $n i64) (result i64)
    (local $i i64) (local $acc i64)
    (block $done
      (loop $l
        (br_if $done (i64.ge_u (local.get $i) (local.get $n)))
        (local.set $acc (i64.add (local.get $acc) (call $inner (local.get $i))))
        (global.set $g (i64.add (global.get $g) (local.get $acc)))
        (i64.store (i32.const 64) (local.get $acc))
        (if (i64.eq (local.get $i) (i64.const 2))
          (then (drop (memory.grow (i32.const 1)))
                (i64.store (i32.const 70000) (global.get $g))))
        (local.set $i (i64.add (local.get $i) (i64.const 1)))
        (br $l)))
    (i64.add (local.get $acc) (global.get $g))))
)";

const char* kRecursionKernelWat = R"((module
  (import "env" "step" (func $step (param i64) (result i64)))
  (memory 1)
  (func $rec (param $d i64) (result i64)
    (if (result i64) (i64.eqz (local.get $d))
      (then (call $step (i64.const 77)))
      (else (i64.add (call $rec (i64.sub (local.get $d) (i64.const 1)))
                     (call $step (local.get $d))))))
  (func (export "run") (param $n i64) (result i64)
    (i64.store (i32.const 8) (call $rec (local.get $n)))
    (i64.load (i32.const 8))))
)";

// No linear memory at all: the snapshot is a few hundred bytes, so the
// hostile sweeps below can afford EVERY truncation length and EVERY
// single-bit flip.
const char* kTinyKernelWat = R"((module
  (import "env" "step" (func $step (param i64) (result i64)))
  (global $g (mut i64) (i64.const 1))
  (func $inner (param $x i64) (result i64)
    (i64.add (call $step (local.get $x)) (i64.const 7)))
  (func (export "run") (param $n i64) (result i64)
    (local $i i64) (local $acc i64)
    (block $done
      (loop $l
        (br_if $done (i64.ge_u (local.get $i) (local.get $n)))
        (local.set $acc (i64.add (local.get $acc) (call $inner (local.get $i))))
        (global.set $g (i64.add (global.get $g) (local.get $acc)))
        (local.set $i (i64.add (local.get $i) (i64.const 1)))
        (br $l)))
    (i64.add (local.get $acc) (global.get $g))))
)";

// Golden fixture: one deterministic park (single host call, fixed stores,
// fixed global mutation), serialized under scheme=kEveryInstr +
// dispatch=kSwitch (the wire-faithful decoded stream — stable against
// fusion-heuristic changes) with a FIXED fake module hash, so the bytes
// depend on nothing but the snapshot format itself.
const char* kGoldenKernelWat = R"((module
  (import "env" "step" (func $step (param i64) (result i64)))
  (memory 1 2)
  (global $g (mut i64) (i64.const 5))
  (data (i32.const 32) "golden")
  (func (export "run") (param $n i64) (result i64)
    (local $acc i64)
    (global.set $g (i64.add (global.get $g) (i64.const 2)))
    (i64.store (i32.const 64) (i64.const 0x0123456789abcdef))
    (local.set $acc (call $step (i64.const 9)))
    (i64.add (local.get $acc) (global.get $g))))
)";

constexpr uint64_t kGoldenFakeModuleHash = 0x1234567890abcdefULL;

uint64_t StepAnswer(uint64_t x) { return x * 3 + 1; }

// --------------------------------------------------------------- fixtures --

struct Fx {
  std::shared_ptr<wasm::Module> module;
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wasm::Instance> instance;
  // Args the parking step() saw, in order (the harness computes the answer
  // for the most recent one at resume).
  std::shared_ptr<std::vector<uint64_t>> parked_args =
      std::make_shared<std::vector<uint64_t>>();
  bool ok = false;
};

Fx MakeKernelFx(const std::string& wat, bool fuse, bool parking) {
  Fx fx;
  auto parsed = wasm::ParseAndValidateWat(wat);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return fx;
  fx.module = *parsed;
  wasm::PrepareOptions popts;
  popts.fuse = fuse;
  wasm::PrepareModule(*fx.module, popts);
  fx.linker = std::make_unique<wasm::Linker>();
  wasm::FuncType step_type;
  step_type.params = {wasm::ValType::kI64};
  step_type.results = {wasm::ValType::kI64};
  if (parking) {
    auto parked = fx.parked_args;
    fx.linker->DefineHostFunc(
        "env", "step", step_type,
        [parked](wasm::ExecContext& ctx, const uint64_t* args,
                 uint64_t*) -> TrapKind {
          parked->push_back(args[0]);
          ctx.SetTrap(TrapKind::kSyscallPending, "parked");
          return ctx.trap;
        });
  } else {
    fx.linker->DefineHostFunc(
        "env", "step", step_type,
        [](wasm::ExecContext&, const uint64_t* args,
           uint64_t* results) -> TrapKind {
          results[0] = StepAnswer(args[0]);
          return TrapKind::kNone;
        });
  }
  auto inst = fx.linker->Instantiate(fx.module);
  EXPECT_TRUE(inst.ok()) << inst.status().ToString();
  if (!inst.ok()) return fx;
  fx.instance = std::move(*inst);
  fx.ok = true;
  return fx;
}

struct RoundTripOutcome {
  RunResult result;
  int parks = 0;
  Fx final_fx;  // the instance that finished the run (memory/global checks)
  bool ok = false;
};

// The never-parked reference run.
RunResult RunBlocking(const std::string& wat, bool fuse, const ExecOptions& opts,
                      uint64_t n, Fx* out_fx = nullptr) {
  Fx fx = MakeKernelFx(wat, fuse, /*parking=*/false);
  RunResult r;
  if (!fx.ok) {
    r.trap = TrapKind::kHostError;
    return r;
  }
  r = fx.instance->CallExport("run", {Value::I64(n)}, opts);
  if (out_fx != nullptr) *out_fx = std::move(fx);
  return r;
}

// The differential arm: run with a parking step(); at EVERY park, snapshot
// the suspension, discard it, rebuild a completely fresh module+instance
// (fresh parse + prepare at the same fusion level), restore into it, and
// resume there with the host call's answer.
RoundTripOutcome RunWithSnapshotEveryPark(const std::string& wat, bool fuse,
                                          const ExecOptions& base, uint64_t n) {
  RoundTripOutcome out;
  std::vector<Fx> live;  // every generation stays alive until the run ends
  live.push_back(MakeKernelFx(wat, fuse, /*parking=*/true));
  if (!live.back().ok) return out;

  auto susp = std::make_unique<wasm::Suspension>();
  ExecOptions opts = base;
  opts.suspend_to = susp.get();
  RunResult r = live.back().instance->CallExport("run", {Value::I64(n)}, opts);

  while (r.trap == TrapKind::kSyscallPending) {
    ++out.parks;
    Fx& cur = live.back();
    if (cur.parked_args->empty()) {
      ADD_FAILURE() << "park without a recorded host-call arg";
      return out;
    }
    const uint64_t arg = cur.parked_args->back();
    const uint64_t hash = wasm::ModuleStructuralHash(*cur.module);

    auto bytes = wasm::SnapshotSuspension(*susp, cur.instance.get(), hash, {});
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    if (!bytes.ok()) return out;
    susp->Discard();

    Fx fresh = MakeKernelFx(wat, fuse, /*parking=*/true);
    if (!fresh.ok) return out;
    EXPECT_EQ(wasm::ModuleStructuralHash(*fresh.module), hash)
        << "same WAT + same prepare must hash identically";

    auto susp2 = std::make_unique<wasm::Suspension>();
    auto blob = wasm::RestoreSuspension(bytes->data(), bytes->size(),
                                        fresh.instance.get(), hash,
                                        /*buffers=*/nullptr, susp2.get());
    EXPECT_TRUE(blob.ok()) << blob.status().ToString();
    if (!blob.ok()) return out;
    EXPECT_TRUE(blob->empty()) << "kernel snapshots carry no host blob";

    live.push_back(std::move(fresh));
    susp = std::move(susp2);
    const uint64_t bits = StepAnswer(arg);
    r = wasm::ResumeInvoke(*susp, &bits, 1);
  }

  out.result = std::move(r);
  out.final_fx = std::move(live.back());
  live.pop_back();
  out.ok = true;
  return out;
}

void ExpectBitIdentical(const RunResult& want, const RunResult& got,
                        const std::string& label) {
  EXPECT_EQ(want.trap, got.trap)
      << label << ": " << wasm::TrapKindName(want.trap) << " vs "
      << wasm::TrapKindName(got.trap) << " (" << got.trap_message << ")";
  EXPECT_EQ(want.executed_instrs, got.executed_instrs) << label;
  EXPECT_EQ(want.exit_code, got.exit_code) << label;
  ASSERT_EQ(want.values.size(), got.values.size()) << label;
  for (size_t i = 0; i < want.values.size(); ++i) {
    EXPECT_EQ(want.values[i].bits, got.values[i].bits)
        << label << " value " << i;
  }
}

void ExpectStateIdentical(Fx& want, Fx& got, const std::string& label) {
  ASSERT_TRUE(want.ok && got.ok) << label;
  const uint32_t num_globals = want.module->NumGlobals();
  for (uint32_t i = 0; i < num_globals; ++i) {
    EXPECT_EQ(want.instance->global(i).bits, got.instance->global(i).bits)
        << label << " global " << i;
  }
  auto wm = want.instance->memory(0);
  auto gm = got.instance->memory(0);
  ASSERT_EQ(wm == nullptr, gm == nullptr) << label;
  if (wm != nullptr) {
    ASSERT_EQ(wm->size_pages(), gm->size_pages()) << label;
    EXPECT_EQ(std::memcmp(wm->base(), gm->base(), wm->size_bytes()), 0)
        << label << ": final linear memory differs";
  }
}

std::string ModeLabel(bool fuse, DispatchMode d) {
  return std::string(fuse ? "fused" : "unfused") + "+" +
         (d == DispatchMode::kThreaded ? "threaded" : "switch");
}

// ------------------------------------------------- round-trip differential --

TEST(WasmSnapshot, RoundTripDifferentialLoopKernel) {
  for (bool fuse : {true, false}) {
    for (DispatchMode dispatch : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
      const std::string label = ModeLabel(fuse, dispatch);
      ExecOptions opts;
      opts.scheme = SafepointScheme::kLoop;
      opts.dispatch = dispatch;
      Fx blocking_fx;
      RunResult want = RunBlocking(kLoopKernelWat, fuse, opts, 6, &blocking_fx);
      ASSERT_EQ(want.trap, TrapKind::kNone) << label << " " << want.trap_message;

      RoundTripOutcome got = RunWithSnapshotEveryPark(kLoopKernelWat, fuse, opts, 6);
      ASSERT_TRUE(got.ok) << label;
      EXPECT_EQ(got.parks, 6) << label << ": one park per loop iteration";
      ExpectBitIdentical(want, got.result, label);
      ExpectStateIdentical(blocking_fx, got.final_fx, label);
      // The mid-run memory.grow must have survived the round trip.
      EXPECT_EQ(got.final_fx.instance->memory(0)->size_pages(), 2u) << label;
    }
  }
}

TEST(WasmSnapshot, RoundTripDifferentialRecursionKernel) {
  for (bool fuse : {true, false}) {
    for (DispatchMode dispatch : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
      const std::string label = ModeLabel(fuse, dispatch);
      ExecOptions opts;
      opts.scheme = SafepointScheme::kLoop;
      opts.dispatch = dispatch;
      Fx blocking_fx;
      RunResult want = RunBlocking(kRecursionKernelWat, fuse, opts, 5, &blocking_fx);
      ASSERT_EQ(want.trap, TrapKind::kNone) << label << " " << want.trap_message;

      RoundTripOutcome got =
          RunWithSnapshotEveryPark(kRecursionKernelWat, fuse, opts, 5);
      ASSERT_TRUE(got.ok) << label;
      // One step() per recursion level plus the base case: rec(5) parks 6
      // times, the deepest with 7 live frames (run + rec x6).
      EXPECT_EQ(got.parks, 6) << label;
      ExpectBitIdentical(want, got.result, label);
      ExpectStateIdentical(blocking_fx, got.final_fx, label);
    }
  }
}

TEST(WasmSnapshot, RoundTripDifferentialJitTier) {
  // The baseline-JIT axis: parks reached FROM COMPILED CODE (the host call
  // deopts to the interpreter, which parks; threshold 0 compiles at first
  // entry, threshold 2 tiers up between parks) must snapshot and restore
  // bit-identically to a JIT-off switch-loop run. Restore lands in a fresh
  // module whose tier state is cold — the resumed run re-tiers on its own.
  for (const char* wat : {kLoopKernelWat, kRecursionKernelWat}) {
    ExecOptions ref_opts;
    ref_opts.scheme = SafepointScheme::kLoop;
    ref_opts.dispatch = DispatchMode::kSwitch;
    ref_opts.jit = wasm::JitTier::kOff;
    Fx blocking_fx;
    RunResult want = RunBlocking(wat, true, ref_opts, 5, &blocking_fx);
    ASSERT_EQ(want.trap, TrapKind::kNone) << want.trap_message;

    for (uint32_t threshold : {0u, 2u}) {
      const std::string label =
          std::string(wat == kLoopKernelWat ? "loop" : "rec") +
          "+jit-threshold=" + std::to_string(threshold);
      ExecOptions opts;
      opts.scheme = SafepointScheme::kLoop;
      opts.dispatch = DispatchMode::kThreaded;
      opts.jit = wasm::JitTier::kOn;
      opts.jit_threshold = threshold;
      RoundTripOutcome got = RunWithSnapshotEveryPark(wat, true, opts, 5);
      ASSERT_TRUE(got.ok) << label;
      ExpectBitIdentical(want, got.result, label);
      ExpectStateIdentical(blocking_fx, got.final_fx, label);
    }
  }
}

TEST(WasmSnapshot, EveryInstrSchemeRoundTrip) {
  // kEveryInstr pins execution to the decoded stream + switch loop; frames
  // serialize with the prepared flag clear and must restore onto the same
  // stream.
  ExecOptions opts;
  opts.scheme = SafepointScheme::kEveryInstr;
  Fx blocking_fx;
  RunResult want = RunBlocking(kLoopKernelWat, true, opts, 5, &blocking_fx);
  ASSERT_EQ(want.trap, TrapKind::kNone) << want.trap_message;
  RoundTripOutcome got = RunWithSnapshotEveryPark(kLoopKernelWat, true, opts, 5);
  ASSERT_TRUE(got.ok);
  ExpectBitIdentical(want, got.result, "every-instr");
  ExpectStateIdentical(blocking_fx, got.final_fx, "every-instr");
}

TEST(WasmSnapshot, FuelBoundarySweep) {
  // Fuel exhaustion must land on exactly the same instruction — executed ==
  // fuel + 1 — whether or not the run was snapshot/restored at every park,
  // for boundaries before the first park, between parks, and after the
  // last. (The restored context carries the original fuel budget and the
  // executed count; the boundary falls wherever it would have.)
  ExecOptions base;
  base.scheme = SafepointScheme::kLoop;
  RunResult free_run = RunBlocking(kLoopKernelWat, true, base, 4);
  ASSERT_EQ(free_run.trap, TrapKind::kNone);
  const uint64_t f0 = free_run.executed_instrs;
  ASSERT_GT(f0, 40u);

  std::vector<uint64_t> fuels = {1, 2, 3, 7, f0 / 4, f0 / 2};
  for (uint64_t f = f0 - 20; f <= f0 + 2; ++f) fuels.push_back(f);

  for (bool fuse : {true, false}) {
    for (DispatchMode dispatch : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
      for (uint64_t fuel : fuels) {
        const std::string label =
            ModeLabel(fuse, dispatch) + " fuel=" + std::to_string(fuel);
        ExecOptions opts = base;
        opts.dispatch = dispatch;
        opts.fuel = fuel;
        RunResult want = RunBlocking(kLoopKernelWat, fuse, opts, 4);
        RoundTripOutcome got =
            RunWithSnapshotEveryPark(kLoopKernelWat, fuse, opts, 4);
        ASSERT_TRUE(got.ok) << label;
        ExpectBitIdentical(want, got.result, label);
        if (fuel < f0) {
          EXPECT_EQ(got.result.trap, TrapKind::kFuelExhausted) << label;
          EXPECT_EQ(got.result.executed_instrs, fuel + 1) << label;
        } else {
          EXPECT_EQ(got.result.trap, TrapKind::kNone) << label;
        }
      }
    }
  }
}

TEST(WasmSnapshot, CrossDispatchRestore) {
  // A snapshot taken under one dispatch loop restores and resumes under the
  // other: at a host-call park the operand stack is in its canonical plain
  // spilled form (STACK_SYNC), identical in both loops, so dispatch mode is
  // a pure performance knob even across an evict/restore boundary.
  for (DispatchMode from : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
    for (DispatchMode to : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
      const std::string label =
          std::string("from=") + (from == DispatchMode::kThreaded ? "threaded" : "switch") +
          " to=" + (to == DispatchMode::kThreaded ? "threaded" : "switch");
      ExecOptions opts;
      opts.scheme = SafepointScheme::kLoop;
      opts.dispatch = from;
      RunResult want = RunBlocking(kLoopKernelWat, true, opts, 6);
      ASSERT_EQ(want.trap, TrapKind::kNone) << label;

      Fx fx = MakeKernelFx(kLoopKernelWat, true, /*parking=*/true);
      ASSERT_TRUE(fx.ok);
      wasm::Suspension susp;
      opts.suspend_to = &susp;
      RunResult r = fx.instance->CallExport("run", {Value::I64(6)}, opts);
      std::vector<Fx> live;
      live.push_back(std::move(fx));
      int hops = 0;
      while (r.trap == TrapKind::kSyscallPending) {
        ++hops;
        Fx& cur = live.back();
        const uint64_t arg = cur.parked_args->back();
        const uint64_t hash = wasm::ModuleStructuralHash(*cur.module);
        auto bytes = wasm::SnapshotSuspension(susp, cur.instance.get(), hash, {});
        ASSERT_TRUE(bytes.ok()) << label << " " << bytes.status().ToString();
        susp.Discard();
        Fx fresh = MakeKernelFx(kLoopKernelWat, true, /*parking=*/true);
        ASSERT_TRUE(fresh.ok);
        auto blob = wasm::RestoreSuspension(bytes->data(), bytes->size(),
                                            fresh.instance.get(), hash, nullptr,
                                            &susp);
        ASSERT_TRUE(blob.ok()) << label << " " << blob.status().ToString();
        // Flip the dispatch loop for the rest of the run.
        susp.ctx->opts.dispatch = to;
        live.push_back(std::move(fresh));
        const uint64_t bits = StepAnswer(arg);
        r = wasm::ResumeInvoke(susp, &bits, 1);
      }
      EXPECT_EQ(hops, 6) << label;
      ExpectBitIdentical(want, r, label);
    }
  }
}

TEST(WasmSnapshot, CrossFusionRestoreFails) {
  // The structural hash covers both instruction streams, so a snapshot
  // taken under one fusion configuration can never be restored into a
  // module prepared differently — saved pcs would index a different stream.
  Fx fused = MakeKernelFx(kLoopKernelWat, true, /*parking=*/true);
  ASSERT_TRUE(fused.ok);
  const uint64_t fused_hash = wasm::ModuleStructuralHash(*fused.module);

  wasm::Suspension susp;
  ExecOptions opts;
  opts.scheme = SafepointScheme::kLoop;
  opts.suspend_to = &susp;
  RunResult r = fused.instance->CallExport("run", {Value::I64(4)}, opts);
  ASSERT_EQ(r.trap, TrapKind::kSyscallPending);
  auto bytes = wasm::SnapshotSuspension(susp, fused.instance.get(), fused_hash, {});
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  susp.Discard();

  Fx unfused = MakeKernelFx(kLoopKernelWat, false, /*parking=*/true);
  ASSERT_TRUE(unfused.ok);
  const uint64_t unfused_hash = wasm::ModuleStructuralHash(*unfused.module);
  EXPECT_NE(fused_hash, unfused_hash)
      << "fusion must change the structural hash";

  wasm::Suspension susp2;
  auto blob = wasm::RestoreSuspension(bytes->data(), bytes->size(),
                                      unfused.instance.get(), unfused_hash,
                                      nullptr, &susp2);
  EXPECT_FALSE(blob.ok());
  EXPECT_FALSE(susp2.armed());

  // Wrong hash for the right module fails the same way.
  wasm::Suspension susp3;
  Fx fused2 = MakeKernelFx(kLoopKernelWat, true, /*parking=*/true);
  ASSERT_TRUE(fused2.ok);
  auto blob2 = wasm::RestoreSuspension(bytes->data(), bytes->size(),
                                       fused2.instance.get(), fused_hash + 1,
                                       nullptr, &susp3);
  EXPECT_FALSE(blob2.ok());
  EXPECT_FALSE(susp3.armed());
}

// ------------------------------------------------------- hostile decoding --

// Produces a valid parked snapshot of `wat` plus the instance/hash needed
// to attempt restores against it.
struct HostileRig {
  Fx fx;            // the parked instance (kept alive; suspension discarded)
  Fx target;        // a fresh instance restores are attempted into
  uint64_t hash = 0;
  std::vector<uint8_t> bytes;
  bool ok = false;
};

// Runs `wat` to its `snapshot_at_park`-th park (completing earlier parks in
// place) and snapshots there, so the bytes can carry dirty memory pages.
HostileRig MakeHostileRig(const std::string& wat, int snapshot_at_park = 1) {
  HostileRig rig;
  rig.fx = MakeKernelFx(wat, true, /*parking=*/true);
  if (!rig.fx.ok) return rig;
  rig.hash = wasm::ModuleStructuralHash(*rig.fx.module);
  wasm::Suspension susp;
  ExecOptions opts;
  opts.scheme = SafepointScheme::kLoop;
  opts.suspend_to = &susp;
  RunResult r = rig.fx.instance->CallExport("run", {Value::I64(4)}, opts);
  for (int park = 1; park < snapshot_at_park; ++park) {
    EXPECT_EQ(r.trap, TrapKind::kSyscallPending);
    if (r.trap != TrapKind::kSyscallPending) return rig;
    const uint64_t bits = StepAnswer(rig.fx.parked_args->back());
    r = wasm::ResumeInvoke(susp, &bits, 1);
  }
  EXPECT_EQ(r.trap, TrapKind::kSyscallPending);
  if (r.trap != TrapKind::kSyscallPending) return rig;
  auto bytes = wasm::SnapshotSuspension(susp, rig.fx.instance.get(), rig.hash, {});
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  susp.Discard();
  if (!bytes.ok()) return rig;
  rig.bytes = std::move(*bytes);
  rig.target = MakeKernelFx(wat, true, /*parking=*/true);
  rig.ok = rig.target.ok;
  return rig;
}

TEST(WasmSnapshotHostile, EveryTruncationErrors) {
  HostileRig rig = MakeHostileRig(kTinyKernelWat);
  ASSERT_TRUE(rig.ok);
  ASSERT_LT(rig.bytes.size(), 4096u) << "tiny kernel snapshot should be small";
  for (size_t len = 0; len < rig.bytes.size(); ++len) {
    wasm::Suspension susp;
    auto blob = wasm::RestoreSuspension(rig.bytes.data(), len,
                                        rig.target.instance.get(), rig.hash,
                                        nullptr, &susp);
    EXPECT_FALSE(blob.ok()) << "truncation to " << len << " bytes decoded";
    EXPECT_FALSE(susp.armed()) << "len=" << len;
  }
  // Sanity: the untruncated bytes still decode.
  wasm::Suspension susp;
  auto blob = wasm::RestoreSuspension(rig.bytes.data(), rig.bytes.size(),
                                      rig.target.instance.get(), rig.hash,
                                      nullptr, &susp);
  EXPECT_TRUE(blob.ok()) << blob.status().ToString();
  susp.Discard();
}

TEST(WasmSnapshotHostile, EverySingleBitFlipErrors) {
  // The payload checksum covers every byte after the header; the header
  // fields are each individually validated. So EVERY single-bit flip must
  // be rejected — deterministically, with no crash and no over-read (this
  // binary runs under ASan in CI).
  HostileRig rig = MakeHostileRig(kTinyKernelWat);
  ASSERT_TRUE(rig.ok);
  std::vector<uint8_t> mutated = rig.bytes;
  for (size_t i = 0; i < rig.bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[i] = rig.bytes[i] ^ static_cast<uint8_t>(1u << bit);
      wasm::Suspension susp;
      auto blob = wasm::RestoreSuspension(mutated.data(), mutated.size(),
                                          rig.target.instance.get(), rig.hash,
                                          nullptr, &susp);
      EXPECT_FALSE(blob.ok()) << "flip byte " << i << " bit " << bit;
      EXPECT_FALSE(susp.armed());
    }
    mutated[i] = rig.bytes[i];
  }
}

TEST(WasmSnapshotHostile, TruncationAndFlipSampledOnMemorySnapshot) {
  // Same properties sampled over a big snapshot (dirty linear-memory delta
  // pages), where the exhaustive sweep would be too slow. Park 4 = after
  // three loop iterations' stores and the memory.grow.
  HostileRig rig = MakeHostileRig(kLoopKernelWat, /*snapshot_at_park=*/4);
  ASSERT_TRUE(rig.ok);
  ASSERT_GT(rig.bytes.size(), wasm::kWasmPageSize)
      << "loop kernel should have carried at least one delta page";
  const size_t n = rig.bytes.size();
  for (size_t len = 0; len < n; len += 997) {
    wasm::Suspension susp;
    auto blob = wasm::RestoreSuspension(rig.bytes.data(), len,
                                        rig.target.instance.get(), rig.hash,
                                        nullptr, &susp);
    EXPECT_FALSE(blob.ok()) << "truncation to " << len;
    EXPECT_FALSE(susp.armed());
  }
  std::vector<uint8_t> mutated = rig.bytes;
  for (size_t i = 0; i < n; i += 131) {
    const int bit = static_cast<int>(i % 8);
    mutated[i] = rig.bytes[i] ^ static_cast<uint8_t>(1u << bit);
    wasm::Suspension susp;
    auto blob = wasm::RestoreSuspension(mutated.data(), n,
                                        rig.target.instance.get(), rig.hash,
                                        nullptr, &susp);
    EXPECT_FALSE(blob.ok()) << "flip byte " << i << " bit " << bit;
    EXPECT_FALSE(susp.armed());
    mutated[i] = rig.bytes[i];
  }
}

TEST(WasmSnapshotHostile, HeaderFieldRejections) {
  HostileRig rig = MakeHostileRig(kTinyKernelWat);
  ASSERT_TRUE(rig.ok);
  auto expect_reject = [&](std::vector<uint8_t> bytes, uint64_t hash,
                           const char* what) {
    wasm::Suspension susp;
    auto blob = wasm::RestoreSuspension(bytes.data(), bytes.size(),
                                        rig.target.instance.get(), hash,
                                        nullptr, &susp);
    EXPECT_FALSE(blob.ok()) << what;
    EXPECT_FALSE(susp.armed()) << what;
  };
  // Empty and header-only inputs.
  expect_reject({}, rig.hash, "empty input");
  expect_reject(std::vector<uint8_t>(rig.bytes.begin(), rig.bytes.begin() + 24),
                rig.hash, "header-only input");
  // Wrong magic (byte 0).
  std::vector<uint8_t> bad_magic = rig.bytes;
  bad_magic[0] ^= 0xff;
  expect_reject(bad_magic, rig.hash, "bad magic");
  // Wrong version (bytes 4..8). Note the checksum does NOT cover the
  // header, so this exercises the version check itself.
  std::vector<uint8_t> bad_version = rig.bytes;
  bad_version[4] = static_cast<uint8_t>(wasm::kSnapshotVersion + 1);
  expect_reject(bad_version, rig.hash, "unsupported version");
  // Wrong module hash: both a patched header field and a mismatched caller.
  std::vector<uint8_t> bad_hash = rig.bytes;
  bad_hash[16] ^= 0x01;
  expect_reject(bad_hash, rig.hash, "patched module hash");
  expect_reject(rig.bytes, rig.hash ^ 1, "caller hash mismatch");
  // Trailing garbage after a valid snapshot.
  std::vector<uint8_t> trailing = rig.bytes;
  trailing.push_back(0x5a);
  expect_reject(trailing, rig.hash, "trailing bytes");
}

// ------------------------------------------------------- format stability --

// Golden pin for snapshot format v1. The bytes of a fixed, fully
// deterministic park (kGoldenKernelWat under kEveryInstr + kSwitch with a
// fixed fake module hash) are summarized by (length, FNV-1a). If either
// changes, the on-disk format changed: bump wasm::kSnapshotVersion and
// regenerate these constants from the failure message. DO NOT update the
// constants without the version bump — old snapshots would decode wrong.
constexpr size_t kGoldenSnapshotSize = 65695;
constexpr uint64_t kGoldenSnapshotFnv = 0x9bb3a85ef3728f77ULL;
// First bytes of the golden snapshot (header + start of the exec section),
// for quick diagnosis of what moved.
constexpr uint8_t kGoldenPrefix[] = {0x57, 0x53, 0x4e, 0x50, 0x01, 0x00,
                                     0x00, 0x00};

uint64_t Fnv64(const std::vector<uint8_t>& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<uint8_t> MakeGoldenSnapshot() {
  Fx fx = MakeKernelFx(kGoldenKernelWat, true, /*parking=*/true);
  EXPECT_TRUE(fx.ok);
  if (!fx.ok) return {};
  wasm::Suspension susp;
  ExecOptions opts;
  opts.scheme = SafepointScheme::kEveryInstr;
  opts.dispatch = DispatchMode::kSwitch;
  opts.suspend_to = &susp;
  RunResult r = fx.instance->CallExport("run", {Value::I64(1)}, opts);
  EXPECT_EQ(r.trap, TrapKind::kSyscallPending) << r.trap_message;
  if (r.trap != TrapKind::kSyscallPending) return {};
  auto bytes = wasm::SnapshotSuspension(susp, fx.instance.get(),
                                        kGoldenFakeModuleHash, {});
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  susp.Discard();
  return bytes.ok() ? std::move(*bytes) : std::vector<uint8_t>{};
}

TEST(WasmSnapshotGolden, FormatStablePin) {
  std::vector<uint8_t> bytes = MakeGoldenSnapshot();
  ASSERT_FALSE(bytes.empty());
  // Deterministic: a second, fully independent generation is bit-identical.
  EXPECT_EQ(bytes, MakeGoldenSnapshot());

  ASSERT_GE(bytes.size(), sizeof(kGoldenPrefix));
  EXPECT_EQ(std::memcmp(bytes.data(), kGoldenPrefix, sizeof(kGoldenPrefix)), 0)
      << "snapshot header prefix changed";
  char actual[64];
  std::snprintf(actual, sizeof(actual), "size=%zu fnv=0x%016llx", bytes.size(),
                static_cast<unsigned long long>(Fnv64(bytes)));
  EXPECT_TRUE(bytes.size() == kGoldenSnapshotSize &&
              Fnv64(bytes) == kGoldenSnapshotFnv)
      << "snapshot format drifted without a version bump.\n"
      << "  golden: size=" << kGoldenSnapshotSize << " fnv=0x" << std::hex
      << kGoldenSnapshotFnv << std::dec << "\n  actual: " << actual << "\n"
      << "If the change is intentional, bump wasm::kSnapshotVersion and "
         "update the golden constants.";
}

TEST(WasmSnapshotGolden, GoldenBytesRestoreAndResume) {
  // The pinned bytes are not just stable — they restore into a fresh
  // instance and resume to the right answer.
  std::vector<uint8_t> bytes = MakeGoldenSnapshot();
  ASSERT_FALSE(bytes.empty());
  Fx fresh = MakeKernelFx(kGoldenKernelWat, true, /*parking=*/true);
  ASSERT_TRUE(fresh.ok);
  wasm::Suspension susp;
  auto blob = wasm::RestoreSuspension(bytes.data(), bytes.size(),
                                      fresh.instance.get(),
                                      kGoldenFakeModuleHash, nullptr, &susp);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  const uint64_t bits = StepAnswer(9);
  RunResult r = wasm::ResumeInvoke(susp, &bits, 1);
  ASSERT_EQ(r.trap, TrapKind::kNone) << r.trap_message;
  ASSERT_EQ(r.values.size(), 1u);
  // step(9)=28, plus global 5+2=7.
  EXPECT_EQ(r.values[0].bits, 35u);
  // The golden's dirty page landed: the pre-park store is visible.
  uint64_t stored = 0;
  std::memcpy(&stored, fresh.instance->memory(0)->base() + 64, 8);
  EXPECT_EQ(stored, 0x0123456789abcdefULL);
}

// --------------------------------------------- workload-suite differential --

// Process-level round trip over the full workload suite: every non-threaded
// WAT workload runs under a real WALI runtime, is parked at every Nth
// syscall boundary by the scripted-park hook, snapshotted with
// wali::SnapshotProcess (fd table, signal dispositions, ledger counters and
// all), restored into a COMPLETELY FRESH process, and resumed there via
// ResumeMain. The final result must be bit-identical to the uninterrupted
// run: trap, exit code, executed_instrs, and final memory size.
TEST(WasmSnapshotWorkloads, ParkEveryNthSyscallRoundTrip) {
  const int kScale = 3;
  const uint64_t kParkEvery = 5;
  int covered = 0;
  for (const workloads::Workload& w : workloads::AllWorkloads()) {
    if (w.wat.empty() || w.uses_threads) continue;
    ++covered;
    const std::string wat = workloads::InstantiateWat(w, kScale);
    for (bool fuse : {true, false}) {
      for (DispatchMode dispatch : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
        const std::string label = w.name + " " + ModeLabel(fuse, dispatch);
        auto parsed = wasm::ParseAndValidateWat(wat);
        ASSERT_TRUE(parsed.ok()) << label << " " << parsed.status().ToString();
        wasm::PrepareOptions popts;
        popts.fuse = fuse;
        wasm::PrepareModule(**parsed, popts);

        wasm::Linker linker;
        wali::WaliRuntime::Options ropts;
        ropts.dispatch = dispatch;
        wali::WaliRuntime rt(&linker, ropts);

        // Reference: uninterrupted run.
        auto ref_proc = rt.CreateProcess(*parsed, {w.name}, {});
        ASSERT_TRUE(ref_proc.ok()) << label << " " << ref_proc.status().ToString();
        RunResult want = rt.RunMain(**ref_proc);

        // Differential arm: park every Nth syscall, snapshot+restore into a
        // fresh process at every eligible park.
        std::vector<std::unique_ptr<wali::WaliProcess>> live;
        {
          auto p = rt.CreateProcess(*parsed, {w.name}, {});
          ASSERT_TRUE(p.ok()) << label << " " << p.status().ToString();
          live.push_back(std::move(*p));
        }
        live.back()->park_after_syscalls = kParkEvery;
        wali::WaliRuntime::MainContinuation cont;
        RunResult got = rt.RunMain(*live.back(), rt.exec_options(), &cont);
        int parks = 0;
        int round_trips = 0;
        while (got.trap == TrapKind::kSyscallPending) {
          ++parks;
          ASSERT_LT(parks, 100000) << label << ": runaway park loop";
          wali::WaliProcess& cur = *live.back();
          // Work out the park's completion value first.
          int64_t result = 0;
          if (cur.pending_io.retry != nullptr) {
            // A live retry closure is not snapshotable by design — but once
            // completed, its answer is pure data: convert the park to a
            // scripted completion and snapshot THERE. (The closure applies
            // its own fd/trace effects, so they land in the blob.)
            std::function<int64_t()> retry = std::move(cur.pending_io.retry);
            cur.pending_io.retry = nullptr;
            result = retry();
            cur.pending_io.op = wali::IoOp::Scripted(result);
          } else if (cur.pending_io.op.kind == wali::IoOp::Kind::kScripted) {
            result = cur.pending_io.op.scripted_result;
          }  // kSleep completes with 0; no need to actually sleep.

          auto snap = wali::SnapshotProcess(cur, cont);
          if (!snap.ok()) {
            // Ineligible at this boundary (e.g. undelivered virtual
            // signals): resume in place, park again later.
            got = rt.ResumeMain(cur, cont, result);
            continue;
          }
          cont.Discard();
          // Hand fd ownership to the restored process: the snapshot carries
          // the fd numbers, and double-close on teardown could hit an
          // unrelated fd opened later.
          for (int fd : cur.GuestFds()) cur.UntrackFd(fd);

          auto fresh = rt.CreateProcess(*parsed, {w.name}, {});
          ASSERT_TRUE(fresh.ok()) << label << " " << fresh.status().ToString();
          wali::IoOp op;
          common::Status restored = wali::RestoreProcess(
              snap->data(), snap->size(), **fresh, cont, &op);
          ASSERT_TRUE(restored.ok()) << label << " " << restored.ToString();
          EXPECT_EQ(static_cast<int>(op.kind),
                    static_cast<int>(cur.pending_io.op.kind))
              << label;
          (*fresh)->park_after_syscalls = kParkEvery;
          live.push_back(std::move(*fresh));
          ++round_trips;
          got = rt.ResumeMain(*live.back(), cont, result);
        }

        EXPECT_GT(parks, 0) << label << ": workload never parked — park hook dead?";
        EXPECT_GT(round_trips, 0)
            << label << ": no park was snapshot-eligible";
        EXPECT_EQ(want.trap, got.trap)
            << label << ": " << wasm::TrapKindName(want.trap) << " vs "
            << wasm::TrapKindName(got.trap) << " (" << got.trap_message << ")";
        EXPECT_EQ(want.exit_code, got.exit_code) << label;
        EXPECT_EQ(want.executed_instrs, got.executed_instrs) << label;
        ASSERT_EQ(want.values.size(), got.values.size()) << label;
        for (size_t i = 0; i < want.values.size(); ++i) {
          EXPECT_EQ(want.values[i].bits, got.values[i].bits) << label;
        }
        // Final memory footprint matches the uninterrupted run.
        EXPECT_EQ((*ref_proc)->memory->size_pages(),
                  live.back()->memory->size_pages())
            << label;
        // Syscall accounting survived every round trip with no double
        // billing: the restored ledgers sum to the reference run's.
        EXPECT_EQ((*ref_proc)->run_syscalls.load(),
                  live.back()->run_syscalls.load())
            << label;
      }
    }
  }
  EXPECT_GE(covered, 3) << "workload suite unexpectedly small";
}

// The scripted-park hook itself must be transparent even without snapshots:
// park every syscall, resume immediately with the scripted result.
TEST(WasmSnapshotWorkloads, ScriptedParkHookIsTransparent) {
  const workloads::Workload* w = workloads::FindWorkload("bash");
  if (w == nullptr || w->wat.empty()) GTEST_SKIP() << "bash analog not present";
  const std::string wat = workloads::InstantiateWat(*w, 2);
  auto parsed = wasm::ParseAndValidateWat(wat);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  wasm::PrepareModule(**parsed);

  wasm::Linker linker;
  wali::WaliRuntime rt(&linker);
  auto ref = rt.CreateProcess(*parsed, {w->name}, {});
  ASSERT_TRUE(ref.ok());
  RunResult want = rt.RunMain(**ref);

  auto proc = rt.CreateProcess(*parsed, {w->name}, {});
  ASSERT_TRUE(proc.ok());
  (*proc)->park_after_syscalls = 1;  // every single syscall parks
  wali::WaliRuntime::MainContinuation cont;
  RunResult got = rt.RunMain(**proc, rt.exec_options(), &cont);
  int parks = 0;
  while (got.trap == TrapKind::kSyscallPending) {
    ++parks;
    ASSERT_LT(parks, 1000000);
    wali::WaliProcess& cur = **proc;
    int64_t result = 0;
    if (cur.pending_io.retry != nullptr) {
      std::function<int64_t()> retry = std::move(cur.pending_io.retry);
      cur.pending_io.retry = nullptr;
      result = retry();
    } else if (cur.pending_io.op.kind == wali::IoOp::Kind::kScripted) {
      result = cur.pending_io.op.scripted_result;
    }
    got = rt.ResumeMain(cur, cont, result);
  }
  EXPECT_GT(parks, 0);
  EXPECT_EQ(want.trap, got.trap) << got.trap_message;
  EXPECT_EQ(want.exit_code, got.exit_code);
  EXPECT_EQ(want.executed_instrs, got.executed_instrs);
  EXPECT_EQ((*ref)->run_syscalls.load(), (*proc)->run_syscalls.load());
}

}  // namespace
