// Concurrent multi-tenant supervisor runs: N guests in parallel with
// distinct argv/env must produce isolated exit codes, see no cross-guest
// memory, honor per-tenant syscall policies, and respect per-job fuel
// limits (paper §5's virtualization layering, host-side).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/host/host.h"
#include "tests/wali_test_util.h"

namespace {

std::string WrapModule(const std::string& body) {
  return std::string("(module ") + wali_test::kPrelude + body + ")";
}

struct SupWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<host::ModuleCache> cache;
  std::unique_ptr<host::Supervisor> sup;
};

SupWorld MakeWorld(size_t workers) {
  SupWorld w;
  w.linker = std::make_unique<wasm::Linker>();
  w.runtime = std::make_unique<wali::WaliRuntime>(w.linker.get());
  w.cache = std::make_unique<host::ModuleCache>();
  host::Supervisor::Options opts;
  opts.workers = workers;
  opts.pool.max_idle_per_module = workers;
  w.sup = std::make_unique<host::Supervisor>(w.runtime.get(), opts);
  return w;
}

// Guest that derives its exit code from argv[1]: copies the string into
// memory, reads the first byte, exits with (byte - '0'). Also writes its
// tenant byte into a scratch word and verifies it is still intact after a
// spin loop — under a recycled or (incorrectly) shared memory another
// concurrent tenant's write would break either the pre-check (must read 0)
// or the post-check (must read back its own byte).
const char* kTenantGuest = R"(
  (memory 2)
  (func (export "main") (result i32)
    (local $c i32)
    (local $i i32)
    (drop (call $copy_argv (i64.const 512) (i64.const 1)))
    (local.set $c (i32.load8_u (i32.const 512)))
    ;; scratch word at 8192 must start zeroed (fresh or properly reset slot)
    (if (i32.ne (i32.load (i32.const 8192)) (i32.const 0))
      (then (return (i32.const 99))))
    (i32.store (i32.const 8192) (local.get $c))
    ;; spin long enough for neighbouring tenants to overlap in time
    (local.set $i (i32.const 0))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 20000)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (if (i32.ne (i32.load (i32.const 8192)) (local.get $c))
      (then (return (i32.const 98))))
    (drop (call $exit (i64.sub (i64.extend_i32_u (local.get $c)) (i64.const 48))))
    (i32.const 0))
)";

TEST(Supervisor, ConcurrentGuestsIsolatedExitCodes) {
  SupWorld w = MakeWorld(/*workers=*/8);
  auto module = w.cache->Load(WrapModule(kTenantGuest));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  const int kJobs = 64;
  std::vector<host::GuestJob> jobs(kJobs);
  for (int k = 0; k < kJobs; ++k) {
    jobs[k].module = *module;
    jobs[k].argv = {"tenant", std::to_string(k % 10)};
    jobs[k].env = {"TENANT_ID=" + std::to_string(k)};
  }
  std::vector<host::RunReport> reports = w.sup->RunAll(std::move(jobs));
  ASSERT_EQ(reports.size(), static_cast<size_t>(kJobs));
  for (int k = 0; k < kJobs; ++k) {
    EXPECT_TRUE(reports[k].completed())
        << "job " << k << ": " << wasm::TrapKindName(reports[k].trap) << " "
        << reports[k].trap_message;
    EXPECT_EQ(reports[k].exit_code, k % 10)
        << "job " << k << " saw another tenant's state";
  }
  // With 8 workers over 64 jobs the pool must have recycled slots.
  host::InstancePool::Stats ps = w.sup->pool().stats();
  EXPECT_GT(ps.hits, 0u);
  EXPECT_LE(ps.high_water, 8u);
  EXPECT_GE(ps.resets, ps.hits);
}

TEST(Supervisor, PerTenantPolicyIsolation) {
  SupWorld w = MakeWorld(/*workers=*/4);
  // Guest exits 42 when getpid is denied (negative return), 7 when allowed.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (if (i64.lt_s (call $getpid) (i64.const 0))
        (then (drop (call $exit (i64.const 42)))))
      (drop (call $exit (i64.const 7)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  auto denied = std::make_shared<wali::SyscallPolicy>();
  denied->Deny("getpid", /*err=*/1);

  std::vector<host::GuestJob> jobs(8);
  for (size_t k = 0; k < jobs.size(); ++k) {
    jobs[k].module = *module;
    jobs[k].argv = {"tenant"};
    if (k % 2 == 0) {
      jobs[k].policy = denied;
    }
  }
  std::vector<host::RunReport> reports = w.sup->RunAll(std::move(jobs));
  for (size_t k = 0; k < reports.size(); ++k) {
    ASSERT_TRUE(reports[k].completed());
    EXPECT_EQ(reports[k].exit_code, k % 2 == 0 ? 42 : 7)
        << "policy leaked between tenants at job " << k;
  }
  EXPECT_GE(denied->denials("getpid"), 4u);
}

TEST(Supervisor, PerJobFuelLimit) {
  SupWorld w = MakeWorld(/*workers=*/2);
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $i i32)
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 1000000)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 5))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  host::GuestJob starved;
  starved.module = *module;
  starved.argv = {"starved"};
  starved.fuel = 1000;  // far below the loop's instruction count
  host::GuestJob fed;
  fed.module = *module;
  fed.argv = {"fed"};

  std::vector<host::RunReport> reports =
      w.sup->RunAll({std::move(starved), std::move(fed)});
  EXPECT_EQ(reports[0].trap, wasm::TrapKind::kFuelExhausted);
  EXPECT_FALSE(reports[0].completed());
  EXPECT_TRUE(reports[1].completed());
  EXPECT_EQ(reports[1].exit_code, 5);
}

TEST(Supervisor, StartFunctionGovernedByJobLimits) {
  // A tenant's (start) function runs under the same fuel budget and policy
  // as the entry point — it must not be able to hang a worker by spinning
  // at instantiation time.
  SupWorld w = MakeWorld(/*workers=*/2);
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func $boot
      (local $i i32)
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i) (i32.const 10000000)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin))))
    (start $boot)
    (func (export "main") (result i32) (i32.const 3))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  host::GuestJob starved;
  starved.module = *module;
  starved.argv = {"starved"};
  starved.fuel = 1000;
  host::GuestJob fed;
  fed.module = *module;
  fed.argv = {"fed"};

  std::vector<host::RunReport> reports =
      w.sup->RunAll({std::move(starved), std::move(fed)});
  EXPECT_EQ(reports[0].trap, wasm::TrapKind::kFuelExhausted)
      << "(start) escaped the tenant fuel budget";
  EXPECT_TRUE(reports[1].completed());
  EXPECT_EQ(reports[1].exit_code, 3);
}

TEST(Supervisor, ReportsCarrySyscallProfile) {
  SupWorld w = MakeWorld(/*workers=*/2);
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (drop (call $getpid))
      (drop (call $getpid))
      (drop (call $gettid))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok());
  host::GuestJob job;
  job.module = *module;
  job.argv = {"prof"};
  std::vector<host::RunReport> reports = w.sup->RunAll({std::move(job)});
  ASSERT_EQ(reports.size(), 1u);
  const host::RunReport& r = reports[0];
  ASSERT_TRUE(r.completed());
  EXPECT_EQ(r.total_syscalls, 3u);
  uint64_t getpid_count = 0;
  for (const auto& [name, count] : r.syscall_counts) {
    if (name == "getpid") getpid_count = count;
  }
  EXPECT_EQ(getpid_count, 2u);
  EXPECT_GE(r.wall_nanos, 0);
}

TEST(Supervisor, ReportsCarryResourceConsumption) {
  // Regression for the accounting plumbing: fuel_consumed and
  // mem_high_water_pages must be nonzero and must grow monotonically with
  // the work a guest actually does (more spin -> more fuel, more
  // memory.grow -> higher high-water). Before the ledger existed these
  // fields were never asserted on anywhere.
  SupWorld w = MakeWorld(/*workers=*/1);
  // argv[1] digit d: grows d pages and spins d*10000 iterations.
  auto module = w.cache->Load(WrapModule(R"(
    (memory 2)
    (func (export "main") (result i32)
      (local $d i32)
      (local $i i32)
      (drop (call $copy_argv (i64.const 512) (i64.const 1)))
      (local.set $d (i32.sub (i32.load8_u (i32.const 512)) (i32.const 48)))
      (drop (memory.grow (local.get $d)))
      (block $done
        (loop $spin
          (br_if $done (i32.ge_u (local.get $i)
                                 (i32.mul (local.get $d) (i32.const 10000))))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $spin)))
      (i32.const 0))
  )"));
  ASSERT_TRUE(module.ok()) << module.status().ToString();

  uint64_t prev_fuel = 0, prev_mem = 0;
  for (int d = 1; d <= 3; ++d) {
    host::GuestJob job;
    job.module = *module;
    job.argv = {"grower", std::to_string(d)};
    host::RunReport r = w.sup->RunAll({std::move(job)})[0];
    ASSERT_TRUE(r.completed()) << r.trap_message;
    EXPECT_GT(r.fuel_consumed, 0u);
    EXPECT_EQ(r.fuel_consumed, r.executed_instrs);
    // 2 declared pages + d grown; pooled slot resets must not leak the
    // previous run's larger high-water into this report.
    EXPECT_EQ(r.mem_high_water_pages, 2u + static_cast<uint64_t>(d));
    EXPECT_GT(r.fuel_consumed, prev_fuel);
    EXPECT_GT(r.mem_high_water_pages, prev_mem);
    prev_fuel = r.fuel_consumed;
    prev_mem = r.mem_high_water_pages;
  }
}

TEST(Supervisor, RunAllReturnsReportsInSubmissionOrder) {
  // RunAll's contract: reports[i] always belongs to jobs[i], even when the
  // scheduler dispatches in a different order. Two tenants submitted as
  // all-of-A-then-all-of-B get round-robin interleaved by the fair queue
  // (observable via dispatch_seq), but the reports still come back in
  // submission order.
  SupWorld w = MakeWorld(/*workers=*/2);
  auto module = w.cache->Load(WrapModule(kTenantGuest));
  ASSERT_TRUE(module.ok());

  const int kPerTenant = 6;
  std::vector<host::GuestJob> jobs;
  for (int k = 0; k < 2 * kPerTenant; ++k) {
    host::GuestJob job;
    job.module = *module;
    job.argv = {"tenant", std::to_string(k % 10)};
    job.tenant = k < kPerTenant ? "a" : "b";
    jobs.push_back(std::move(job));
  }
  std::vector<host::RunReport> reports = w.sup->RunAll(std::move(jobs));
  ASSERT_EQ(reports.size(), static_cast<size_t>(2 * kPerTenant));
  for (int k = 0; k < 2 * kPerTenant; ++k) {
    ASSERT_TRUE(reports[k].completed()) << reports[k].trap_message;
    EXPECT_EQ(reports[k].exit_code, k % 10)
        << "report " << k << " does not belong to job " << k;
    EXPECT_EQ(reports[k].tenant, k < kPerTenant ? "a" : "b");
    EXPECT_GE(reports[k].dispatch_seq, 1u);
  }
}

TEST(Supervisor, SubmitAfterShutdownFails) {
  SupWorld w = MakeWorld(/*workers=*/2);
  auto module = w.cache->Load(WrapModule(
      "(memory 2) (func (export \"main\") (result i32) (i32.const 0))"));
  ASSERT_TRUE(module.ok());
  w.sup->Shutdown();
  host::GuestJob job;
  job.module = *module;
  job.argv = {"late"};
  host::RunReport r = w.sup->Submit(std::move(job)).get();
  EXPECT_EQ(r.trap, wasm::TrapKind::kHostError);
  EXPECT_EQ(r.outcome, host::Outcome::kRejected);
}

TEST(Supervisor, ManyRoundsReuseBoundedSlots) {
  SupWorld w = MakeWorld(/*workers=*/4);
  auto module = w.cache->Load(WrapModule(kTenantGuest));
  ASSERT_TRUE(module.ok());
  for (int round = 0; round < 5; ++round) {
    std::vector<host::GuestJob> jobs(16);
    for (size_t k = 0; k < jobs.size(); ++k) {
      jobs[k].module = *module;
      jobs[k].argv = {"tenant", std::to_string(k % 10)};
    }
    std::vector<host::RunReport> reports = w.sup->RunAll(std::move(jobs));
    for (size_t k = 0; k < reports.size(); ++k) {
      ASSERT_TRUE(reports[k].completed());
      ASSERT_EQ(reports[k].exit_code, static_cast<int>(k % 10));
    }
  }
  host::InstancePool::Stats ps = w.sup->pool().stats();
  // 80 runs total; at most workers+idle slots ever built cold.
  EXPECT_LE(ps.misses, 8u);
  EXPECT_GT(ps.hits, 60u);
}

}  // namespace
