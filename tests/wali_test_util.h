// Helpers for WALI integration tests: run a WAT guest under a fresh WALI
// runtime and inspect the process afterwards.
#ifndef TESTS_WALI_TEST_UTIL_H_
#define TESTS_WALI_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace wali_test {

// Common import prelude available to every guest; unused imports are free.
inline const char* kPrelude = R"(
  (import "wali" "SYS_read" (func $read (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_openat" (func $openat (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_open" (func $open (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_close" (func $close (param i64) (result i64)))
  (import "wali" "SYS_lseek" (func $lseek (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_fstat" (func $fstat (param i64 i64) (result i64)))
  (import "wali" "SYS_stat" (func $stat (param i64 i64) (result i64)))
  (import "wali" "SYS_unlink" (func $unlink (param i64) (result i64)))
  (import "wali" "SYS_mkdir" (func $mkdir (param i64 i64) (result i64)))
  (import "wali" "SYS_rmdir" (func $rmdir (param i64) (result i64)))
  (import "wali" "SYS_getcwd" (func $getcwd (param i64 i64) (result i64)))
  (import "wali" "SYS_dup" (func $dup (param i64) (result i64)))
  (import "wali" "SYS_pipe2" (func $pipe2 (param i64 i64) (result i64)))
  (import "wali" "SYS_mmap" (func $mmap (param i64 i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_munmap" (func $munmap (param i64 i64) (result i64)))
  (import "wali" "SYS_mremap" (func $mremap (param i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_brk" (func $brk (param i64) (result i64)))
  (import "wali" "SYS_getpid" (func $getpid (result i64)))
  (import "wali" "SYS_gettid" (func $gettid (result i64)))
  (import "wali" "SYS_getuid" (func $getuid (result i64)))
  (import "wali" "SYS_exit" (func $exit (param i64) (result i64)))
  (import "wali" "SYS_exit_group" (func $exit_group (param i64) (result i64)))
  (import "wali" "SYS_fork" (func $fork (result i64)))
  (import "wali" "SYS_wait4" (func $wait4 (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_clone" (func $clone (param i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_futex" (func $futex (param i64 i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_rt_sigaction" (func $sigaction (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_rt_sigprocmask" (func $sigprocmask (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_kill" (func $kill (param i64 i64) (result i64)))
  (import "wali" "SYS_tgkill" (func $tgkill (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_clock_gettime" (func $clock_gettime (param i64 i64) (result i64)))
  (import "wali" "SYS_nanosleep" (func $nanosleep (param i64 i64) (result i64)))
  (import "wali" "SYS_uname" (func $uname (param i64) (result i64)))
  (import "wali" "SYS_sched_yield" (func $sched_yield (result i64)))
  (import "wali" "SYS_getrandom" (func $getrandom (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_socket" (func $socket (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_socketpair" (func $socketpair (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_bind" (func $bind (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_sendto" (func $sendto (param i64 i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_recvfrom" (func $recvfrom (param i64 i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_poll" (func $poll (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_ppoll" (func $ppoll (param i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_connect" (func $connect (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_listen" (func $listen (param i64 i64) (result i64)))
  (import "wali" "SYS_accept" (func $accept (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_getsockname" (func $getsockname (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_readv" (func $readv (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_writev" (func $writev (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_fcntl" (func $fcntl (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_ioctl" (func $ioctl (param i64 i64 i64) (result i64)))
  (import "wali" "get_argc" (func $get_argc (result i64)))
  (import "wali" "get_argv_len" (func $get_argv_len (param i64) (result i64)))
  (import "wali" "copy_argv" (func $copy_argv (param i64 i64) (result i64)))
  (import "wali" "get_envc" (func $get_envc (result i64)))
  (import "wali" "get_env_len" (func $get_env_len (param i64) (result i64)))
  (import "wali" "copy_env" (func $copy_env (param i64 i64) (result i64)))
)";

struct WaliWorld {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<wali::WaliProcess> process;
  wasm::RunResult result;
};

// Parses `body` (module fields, prelude prepended), creates a process, runs
// main, and returns the whole world for inspection.
inline WaliWorld RunWali(
    const std::string& body,
    std::vector<std::string> argv = {"test"},
    std::vector<std::string> env = {},
    wasm::SafepointScheme scheme = wasm::SafepointScheme::kLoop) {
  WaliWorld world;
  std::string wat = std::string("(module ") + kPrelude + body + ")";
  auto parsed = wasm::ParseAndValidateWat(wat);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return world;
  world.linker = std::make_unique<wasm::Linker>();
  wali::WaliRuntime::Options opts;
  opts.scheme = scheme;
  world.runtime = std::make_unique<wali::WaliRuntime>(world.linker.get(), opts);
  auto proc = world.runtime->CreateProcess(*parsed, std::move(argv), std::move(env));
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  if (!proc.ok()) return world;
  world.process = std::move(*proc);
  world.result = world.runtime->RunMain(*world.process);
  return world;
}

// Expects main to return the i32 `want` (or exit cleanly with it).
inline void ExpectWaliMain(const std::string& body, uint32_t want,
                           std::vector<std::string> argv = {"test"},
                           std::vector<std::string> env = {}) {
  WaliWorld world = RunWali(body, std::move(argv), std::move(env));
  if (world.result.trap == wasm::TrapKind::kExit) {
    EXPECT_EQ(static_cast<uint32_t>(world.result.exit_code), want)
        << world.result.trap_message;
    return;
  }
  ASSERT_EQ(world.result.trap, wasm::TrapKind::kNone)
      << wasm::TrapKindName(world.result.trap) << " " << world.result.trap_message;
  ASSERT_EQ(world.result.values.size(), 1u);
  EXPECT_EQ(world.result.values[0].i32(), want);
}

}  // namespace wali_test

#endif  // TESTS_WALI_TEST_UTIL_H_
