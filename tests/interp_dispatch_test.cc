// Differential tests for the interpreter dispatch modes: the portable
// switch loop and the computed-goto threaded loop must produce identical
// results, trap kinds, and bit-identical executed_instrs/fuel boundaries,
// over both the fused and unfused prepared streams. This is what lets the
// host layer's TenantLedger reservation math treat dispatch mode as a pure
// performance knob.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/wasm/prepare.h"
#include "src/wasm/wasm.h"
#include "src/workloads/workloads.h"
#include "tests/wat_test_util.h"

namespace {

using wasm::DispatchMode;
using wasm::ExecOptions;
using wasm::RunResult;
using wasm::SafepointScheme;
using wasm::TrapKind;
using wasm::Value;

struct ModeRun {
  std::string label;
  RunResult result;
  uint64_t mem_pages = 0;
  uint64_t mem_high_water = 0;
};

// Runs `func` under every dispatch x fusion combination, each in a fresh
// instance (fresh memory/globals) of the same module text.
std::vector<ModeRun> RunAllModes(const std::string& wat, const std::string& func,
                                 const std::vector<Value>& args,
                                 ExecOptions base = {}) {
  std::vector<ModeRun> runs;
  for (bool fuse : {true, false}) {
    auto parsed = wasm::ParseAndValidateWat(wat);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return runs;
    wasm::PrepareOptions popts;
    popts.fuse = fuse;
    wasm::PrepareModule(**parsed, popts);
    for (DispatchMode mode : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
      wasm::Linker linker;
      auto inst = linker.Instantiate(*parsed);
      EXPECT_TRUE(inst.ok()) << inst.status().ToString();
      if (!inst.ok()) return runs;
      ExecOptions opts = base;
      opts.dispatch = mode;
      ModeRun run;
      run.label = std::string(fuse ? "fused" : "unfused") + "+" +
                  wasm::DispatchModeName(mode);
      run.result = (*inst)->CallExport(func, args, opts);
      auto mem = (*inst)->memory(0);
      if (mem != nullptr) {
        run.mem_pages = mem->size_pages();
        run.mem_high_water = mem->high_water_pages();
      }
      runs.push_back(std::move(run));
    }
  }
  return runs;
}

// All four runs must agree bit-for-bit on everything observable.
void ExpectAllAgree(const std::vector<ModeRun>& runs) {
  ASSERT_EQ(runs.size(), 4u);
  const ModeRun& ref = runs[0];
  for (const ModeRun& r : runs) {
    EXPECT_EQ(r.result.trap, ref.result.trap) << r.label;
    EXPECT_EQ(r.result.executed_instrs, ref.result.executed_instrs) << r.label;
    EXPECT_EQ(r.result.exit_code, ref.result.exit_code) << r.label;
    ASSERT_EQ(r.result.values.size(), ref.result.values.size()) << r.label;
    for (size_t i = 0; i < r.result.values.size(); ++i) {
      EXPECT_EQ(r.result.values[i].bits, ref.result.values[i].bits) << r.label;
    }
    EXPECT_EQ(r.mem_pages, ref.mem_pages) << r.label;
    EXPECT_EQ(r.mem_high_water, ref.mem_high_water) << r.label;
  }
}

TEST(InterpDispatch, ThreadedModeMatchesBuild) {
  ExecOptions opts;
  opts.dispatch = DispatchMode::kAuto;
  DispatchMode resolved = wasm::ResolveDispatch(opts);
  if (wasm::ThreadedDispatchAvailable()) {
    EXPECT_EQ(resolved, DispatchMode::kThreaded);
  } else {
    EXPECT_EQ(resolved, DispatchMode::kSwitch);
  }
  // kEveryInstr polling always runs the per-instruction switch slow path.
  opts.scheme = SafepointScheme::kEveryInstr;
  opts.dispatch = DispatchMode::kThreaded;
  EXPECT_EQ(wasm::ResolveDispatch(opts), DispatchMode::kSwitch);
}

TEST(InterpDispatch, ArithmeticLoop) {
  ExpectAllAgree(RunAllModes(R"((module
    (func (export "f") (param $n i32) (result i32)
      (local $i i32) (local $acc i32)
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $acc (i32.add (local.get $acc) (i32.mul (local.get $i) (i32.const 3))))
        (local.set $acc (i32.xor (local.get $acc) (i32.shr_u (local.get $acc) (i32.const 7))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $acc))))",
                             "f", {Value::I32(5000)}));
}

TEST(InterpDispatch, CallInExpressionRegression) {
  // Regression: caller-pushed call arguments must survive the threaded
  // loop's raw-sp/vector handoff (loop-header polls between push and call).
  ExpectAllAgree(RunAllModes(R"((module
    (func $hash (param $addr i32) (param $len i32) (result i32)
      (local $h i32) (local $i i32)
      (local.set $h (i32.const 0x811c9dc5))
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $len)))
        (local.set $h (i32.mul (i32.xor (local.get $h)
          (i32.add (local.get $addr) (local.get $i))) (i32.const 16777619)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $h))
    (func (export "f") (result i32)
      (local $k i32) (local $acc i32)
      (block $hd (loop $hl
        (br_if $hd (i32.ge_u (local.get $k) (i32.const 20)))
        (local.set $acc (i32.add (local.get $acc) (call $hash (i32.const 640) (i32.const 66))))
        (local.set $k (i32.add (local.get $k) (i32.const 1)))
        (br $hl)))
      (local.get $acc))))",
                             "f", {}));
}

TEST(InterpDispatch, RecursionAndControl) {
  ExpectAllAgree(RunAllModes(R"((module
    (func $fib (export "f") (param i32) (result i32)
      (if (result i32) (i32.lt_u (local.get 0) (i32.const 2))
        (then (local.get 0))
        (else (i32.add
          (call $fib (i32.sub (local.get 0) (i32.const 1)))
          (call $fib (i32.sub (local.get 0) (i32.const 2)))))))
  ))",
                             "f", {Value::I32(18)}));
}

TEST(InterpDispatch, BrTableSelectGlobals) {
  ExpectAllAgree(RunAllModes(R"((module
    (global $g (mut i32) (i32.const 5))
    (func (export "f") (result i32)
      (local $i i32) (local $acc i32)
      (block $out (loop $m
        (br_if $out (i32.ge_u (local.get $i) (i32.const 300)))
        (global.set $g (i32.add (global.get $g) (i32.const 3)))
        (local.set $acc (i32.add (local.get $acc)
          (select (i32.const 7) (i32.const 11) (i32.and (local.get $i) (i32.const 1)))))
        (block $b2 (block $b1 (block $b0
          (br_table $b0 $b1 $b2 (i32.rem_u (local.get $i) (i32.const 3))))
          (local.set $acc (i32.add (local.get $acc) (i32.const 1))))
          (local.set $acc (i32.add (local.get $acc) (i32.const 2))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $m)))
      (i32.add (local.get $acc) (global.get $g)))))",
                             "f", {}));
}

TEST(InterpDispatch, MemoryOpsAndGrow) {
  ExpectAllAgree(RunAllModes(R"((module
    (memory 1 4)
    (func (export "f") (result i32)
      (local $i i32) (local $acc i32)
      (drop (memory.grow (i32.const 1)))
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (i32.const 5000)))
        (i32.store (i32.mul (local.get $i) (i32.const 4))
                   (i32.mul (local.get $i) (i32.const 17)))
        (local.set $acc (i32.add (local.get $acc)
          (i32.load (i32.mul (local.get $i) (i32.const 4)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (i32.add (local.get $acc) (i32.mul (memory.size) (i32.const 1000))))))",
                             "f", {}));
}

TEST(InterpDispatch, TrapParityOutOfBounds) {
  // The trapping access sits mid-segment: the threaded loop must reconcile
  // its up-front block charge so executed counts match per-instruction
  // accounting exactly, including the trapping instruction.
  ExpectAllAgree(RunAllModes(R"((module
    (memory 1 1)
    (func (export "f") (param $i i32) (result i32)
      (local $x i32)
      (local.set $x (i32.const 3))
      (i32.add (local.get $x) (i32.load (local.get $i))))
  ))",
                             "f", {Value::I32(70000)}));
}

TEST(InterpDispatch, TrapParityDivByZeroAndUnreachable) {
  ExpectAllAgree(RunAllModes(R"((module
    (func (export "f") (param $d i32) (result i32)
      (local $i i32) (local $acc i32)
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (i32.const 100)))
        (local.set $acc (i32.add (local.get $acc)
          (i32.div_u (i32.const 1000) (i32.sub (i32.const 50) (local.get $i)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $acc))))",
                             "f", {Value::I32(0)}));
  ExpectAllAgree(RunAllModes(
      "(module (func (export \"f\") (local $x i32) (local.set $x (i32.const 2)) unreachable))",
      "f", {}));
}

TEST(InterpDispatch, FuelBoundaryBitIdentical) {
  const char* wat = R"((module
    (func (export "f") (param $n i32) (result i32)
      (local $i i32) (local $acc i32)
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $acc (i32.add (local.get $acc) (i32.const 2)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $acc))))";
  // Baseline instruction count with no fuel limit.
  std::vector<ModeRun> free_runs = RunAllModes(wat, "f", {Value::I32(200)});
  ExpectAllAgree(free_runs);
  const uint64_t f0 = free_runs[0].result.executed_instrs;
  ASSERT_GT(f0, 100u);

  for (uint64_t fuel : {uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{7},
                        f0 / 2, f0 - 1, f0, f0 + 5}) {
    ExecOptions base;
    base.fuel = fuel;
    std::vector<ModeRun> runs = RunAllModes(wat, "f", {Value::I32(200)}, base);
    ExpectAllAgree(runs);
    const RunResult& r = runs[0].result;
    if (fuel < f0) {
      EXPECT_EQ(r.trap, TrapKind::kFuelExhausted) << "fuel=" << fuel;
      // Exhaustion bills exactly one instruction past the budget, in every
      // dispatch/fusion combination (TenantLedger reservation guard).
      EXPECT_EQ(r.executed_instrs, fuel + 1) << "fuel=" << fuel;
    } else {
      EXPECT_EQ(r.trap, TrapKind::kNone) << "fuel=" << fuel;
      EXPECT_EQ(r.executed_instrs, f0);
    }
  }
}

TEST(InterpDispatch, WidenedSuperinstructionDifferential) {
  // One kernel exercising the PR 5 fusion set: i64 const-ops, i64 cmp
  // branches, local.get+i64.load, load+op, cmp+select, local.tee+br_if,
  // local.get+local.get+cmp(+br_if), local+const+op(+set), and the direct
  // call fast path — all under every dispatch x fusion combination.
  const char* wat = R"((module
    (memory 1)
    (func $mix (param $x i64) (result i64)
      (local $v i64)
      (local.set $v (i64.xor (local.get $x) (i64.shr_u (local.get $x) (i64.const 13))))
      (local.set $v (i64.mul (local.get $v) (i64.const 0x2545F4914F6CDD1D)))
      (i64.rotl (local.get $v) (i64.const 31)))
    (func (export "f") (param $n i32) (result i64)
      (local $i i32) (local $acc i64) (local $t i32) (local $lim i32)
      (local.set $lim (local.get $n))
      (i64.store (i32.const 128) (i64.const 0x1122334455667788))
      (block $done
        (loop $l
          (br_if $done (i32.ge_u (local.get $i) (local.get $lim)))
          (local.set $acc (i64.add (local.get $acc) (call $mix (i64.extend_i32_u (local.get $i)))))
          (local.set $acc (i64.add (local.get $acc) (i64.load (i32.const 128))))
          (local.set $acc (i64.add (local.get $acc)
            (i64.extend_i32_u (i32.add (local.get $t)
              (i32.load (i32.and (local.get $i) (i32.const 0xFC)))))))
          (local.set $t (select (i32.const 3) (i32.const 5)
            (i64.lt_u (local.get $acc) (i64.const 0x8000000000000000))))
          (block $skip
            (br_if $skip (local.tee $t (i32.and (local.get $t) (i32.const 7))))
            (local.set $t (i32.const 1)))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
      (local.get $acc))))";
  ExpectAllAgree(RunAllModes(wat, "f", {Value::I32(4000)}));

  // Fuel sweep over the same kernel: exhaustion must land at exactly
  // executed == fuel + 1 in every dispatch x fusion combination, even when
  // the boundary falls inside a fused region.
  std::vector<ModeRun> free_runs = RunAllModes(wat, "f", {Value::I32(50)});
  ExpectAllAgree(free_runs);
  const uint64_t f0 = free_runs[0].result.executed_instrs;
  ASSERT_GT(f0, 200u);
  for (uint64_t fuel = f0 - 40; fuel <= f0 + 1; ++fuel) {
    ExecOptions base;
    base.fuel = fuel;
    std::vector<ModeRun> runs = RunAllModes(wat, "f", {Value::I32(50)}, base);
    ExpectAllAgree(runs);
    if (fuel < f0) {
      EXPECT_EQ(runs[0].result.trap, TrapKind::kFuelExhausted) << "fuel=" << fuel;
      EXPECT_EQ(runs[0].result.executed_instrs, fuel + 1) << "fuel=" << fuel;
    } else {
      EXPECT_EQ(runs[0].result.trap, TrapKind::kNone) << "fuel=" << fuel;
    }
  }
}

TEST(InterpDispatch, BranchDiscardingNothingKeepsLiveTop) {
  // Regression: an arity-0 branch whose target height equals the current
  // depth discards nothing — the surviving top may live only in the
  // threaded loop's TOS cache, and reloading it from its (stale) home slot
  // replaced a live value with garbage. The enclosing expression's operand
  // must survive a br out of a value-less block.
  ExpectAllAgree(RunAllModes(R"((module
    (func (export "f") (result i32)
      (i32.const 42)
      (block $b (br $b))
      (i32.add (i32.const 1))))
  )",
                             "f", {}));
  wasm_test::ExpectI32(R"((module
    (func (export "f") (result i32)
      (i32.const 42)
      (block $b (br $b))
      (i32.add (i32.const 1)))))",
                       "f", {}, 43);
  // Same shape through br_if (taken and untaken) and nested blocks.
  ExpectAllAgree(RunAllModes(R"((module
    (func (export "f") (param $c i32) (result i32)
      (i32.const 7)
      (block $o
        (block $i
          (br_if $o (local.get $c))
          (br $i)))
      (i32.mul (i32.const 3))))
  )",
                             "f", {Value::I32(1)}));
  ExpectAllAgree(RunAllModes(R"((module
    (func (export "f") (param $c i32) (result i32)
      (i32.const 7)
      (block $o
        (block $i
          (br_if $o (local.get $c))
          (br $i)))
      (i32.mul (i32.const 3))))
  )",
                             "f", {Value::I32(0)}));
}

TEST(InterpDispatch, LoadOpTrapBillsOneUnit) {
  // The i32.load+op fusion traps at its FIRST source instruction; the
  // billed executed count must match the unfused stream exactly (the load
  // executes and traps, the ALU op never runs).
  ExpectAllAgree(RunAllModes(R"((module
    (memory 1 1)
    (func (export "f") (param $i i32) (result i32)
      (local $acc i32)
      (local.set $acc (i32.const 7))
      (i32.add (local.get $acc)
               (i32.load (i32.mul (local.get $i) (i32.const 4))))))
  )",
                             "f", {Value::I32(70000)}));
}

TEST(InterpDispatch, DirectCallDeepRecursionParity) {
  // kFCallWasm must hit the same kStackExhausted boundary as the generic
  // call path (frame and value-stack limits are checked identically).
  const char* wat = R"((module
    (func $down (param $n i32) (result i32)
      (if (result i32) (local.get $n)
        (then (i32.add (i32.const 1) (call $down (i32.sub (local.get $n) (i32.const 1)))))
        (else (i32.const 0))))
    (func (export "f") (param $n i32) (result i32)
      (call $down (local.get $n))))
  )";
  ExpectAllAgree(RunAllModes(wat, "f", {Value::I32(500)}));
  ExecOptions tight;
  tight.max_frames = 64;
  std::vector<ModeRun> runs = RunAllModes(wat, "f", {Value::I32(500)}, tight);
  ExpectAllAgree(runs);
  EXPECT_EQ(runs[0].result.trap, TrapKind::kStackExhausted);
}

TEST(InterpDispatch, SuspendResumeThroughFusedRegion) {
  // A host call parked mid-loop, with fused regions (loop-header cmp+br_if,
  // counter updates, const-ops) on both sides of the call site: resuming
  // must continue through the fused stream bit-identically to a blocking
  // run, in both dispatch modes.
  const char* wat = R"((module
    (import "env" "blocking" (func $b (param i64) (result i64)))
    (memory 1)
    (func (export "f") (param $n i32) (result i64)
      (local $i i32) (local $acc i64)
      (block $done
        (loop $l
          (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
          (local.set $acc (i64.add (local.get $acc)
              (call $b (i64.extend_i32_u (local.get $i)))))
          (local.set $acc (i64.add (local.get $acc) (i64.const 17)))
          (i64.store (i32.const 64) (local.get $acc))
          (local.set $i (i32.add (local.get $i) (i32.const 1)))
          (br $l)))
      (local.get $acc))))";
  for (DispatchMode mode : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
    SCOPED_TRACE(wasm::DispatchModeName(mode));
    // Blocking run: host answers inline.
    wasm_test::WatFixture blocking =
        wasm_test::Instantiate(wat, [](wasm::Linker& linker) {
          wasm::FuncType type;
          type.params = {wasm::ValType::kI64};
          type.results = {wasm::ValType::kI64};
          linker.DefineHostFunc(
              "env", "blocking", type,
              [](wasm::ExecContext&, const uint64_t* args, uint64_t* results) {
                results[0] = args[0] * 3 + 1;
                return TrapKind::kNone;
              });
        });
    ASSERT_NE(blocking.instance, nullptr);
    ExecOptions opts;
    opts.dispatch = mode;
    RunResult want = blocking.instance->CallExport("f", {Value::I32(25)}, opts);
    ASSERT_TRUE(want.ok());

    // Suspending run: every host call parks; results materialize via
    // ResumeInvoke.
    std::vector<uint64_t> parked;
    wasm_test::WatFixture susp_fx =
        wasm_test::Instantiate(wat, [&parked](wasm::Linker& linker) {
          wasm::FuncType type;
          type.params = {wasm::ValType::kI64};
          type.results = {wasm::ValType::kI64};
          linker.DefineHostFunc(
              "env", "blocking", type,
              [&parked](wasm::ExecContext& ctx, const uint64_t* args, uint64_t*) {
                parked.push_back(args[0]);
                ctx.SetTrap(TrapKind::kSyscallPending, "parked");
                return ctx.trap;
              });
        });
    ASSERT_NE(susp_fx.instance, nullptr);
    wasm::Suspension susp;
    ExecOptions sopts;
    sopts.dispatch = mode;
    sopts.suspend_to = &susp;
    RunResult got = susp_fx.instance->CallExport("f", {Value::I32(25)}, sopts);
    int parks = 0;
    while (got.trap == TrapKind::kSyscallPending) {
      ++parks;
      uint64_t bits = parked.back() * 3 + 1;
      got = wasm::ResumeInvoke(susp, &bits, 1);
    }
    EXPECT_EQ(parks, 25);
    ASSERT_TRUE(got.ok()) << got.trap_message;
    EXPECT_EQ(got.values[0].bits, want.values[0].bits);
    EXPECT_EQ(got.executed_instrs, want.executed_instrs);
  }
}

TEST(InterpDispatch, SafepointPollCountParity) {
  const char* wat = R"((module
    (func $inner (param $n i32) (result i32)
      (local $i i32)
      (block $done (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $i))
    (func (export "f") (result i32)
      (i32.add (call $inner (i32.const 10)) (call $inner (i32.const 20))))
  ))";
  for (SafepointScheme scheme :
       {SafepointScheme::kLoop, SafepointScheme::kFunction,
        SafepointScheme::kEveryInstr}) {
    uint64_t counts[2] = {0, 0};
    uint64_t executed[2] = {0, 0};
    int mode_i = 0;
    for (DispatchMode mode : {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
      wasm_test::WatFixture fx = wasm_test::Instantiate(wat);
      ASSERT_NE(fx.instance, nullptr);
      uint64_t polls = 0;
      fx.instance->set_safepoint_fn([&polls](wasm::ExecContext&) {
        ++polls;
        return TrapKind::kNone;
      });
      ExecOptions opts;
      opts.scheme = scheme;
      opts.dispatch = mode;
      RunResult r = fx.instance->CallExport("f", {}, opts);
      ASSERT_TRUE(r.ok());
      counts[mode_i] = polls;
      executed[mode_i] = r.executed_instrs;
      ++mode_i;
    }
    EXPECT_EQ(counts[0], counts[1]) << "scheme " << static_cast<int>(scheme);
    EXPECT_EQ(executed[0], executed[1]) << "scheme " << static_cast<int>(scheme);
    EXPECT_GT(counts[0], 0u) << "scheme " << static_cast<int>(scheme);
  }
}

TEST(InterpDispatch, ExecBuffersRecycleAcrossRuns) {
  wasm_test::WatFixture fx = wasm_test::Instantiate(R"((module
    (func (export "f") (param $n i32) (result i32)
      (local $i i32)
      (block $d (loop $l
        (br_if $d (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
      (local.get $i))))");
  ASSERT_NE(fx.instance, nullptr);
  wasm::ExecBuffers buffers;
  ExecOptions opts;
  opts.buffers = &buffers;
  for (int i = 0; i < 3; ++i) {
    RunResult r = fx.instance->CallExport("f", {Value::I32(100)}, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.values[0].i32(), 100u);
    // The run's grown storage is swapped back for the next invocation.
    EXPECT_GT(buffers.stack.capacity(), 0u);
    EXPECT_GT(buffers.frames.capacity(), 0u);
  }
}

TEST(InterpDispatch, WorkloadSuiteDifferential) {
  // The actual serving workloads (non-threaded ones are deterministic in
  // instruction count): identical results, traps and executed counts.
  for (const workloads::Workload& w : workloads::AllWorkloads()) {
    if (w.wat.empty() || w.uses_threads) continue;
    auto sw = workloads::RunUnderWali(w, 3, SafepointScheme::kLoop,
                                      DispatchMode::kSwitch);
    auto th = workloads::RunUnderWali(w, 3, SafepointScheme::kLoop,
                                      DispatchMode::kThreaded);
    EXPECT_EQ(sw.result.trap, th.result.trap) << w.name;
    EXPECT_EQ(sw.result.exit_code, th.result.exit_code) << w.name;
    EXPECT_EQ(sw.result.executed_instrs, th.result.executed_instrs) << w.name;
    EXPECT_EQ(sw.peak_linear_memory, th.peak_linear_memory) << w.name;
  }
}

}  // namespace
